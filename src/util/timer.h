// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Wall-clock timing helpers used by the benchmark harness.

#ifndef IPS_UTIL_TIMER_H_
#define IPS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ips {

/// Monotonic wall-clock stopwatch.
///
/// Usage:
///   WallTimer timer;
///   ... work ...
///   double elapsed = timer.Seconds();
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double Millis() const { return Seconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ips

#endif  // IPS_UTIL_TIMER_H_
