#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace ips {

void OnlineStats::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double OnlineStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::StdDev() const { return std::sqrt(Variance()); }

double OnlineStats::StdError() const {
  if (count_ == 0) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  IPS_CHECK_GE(q, 0.0);
  IPS_CHECK_LE(q, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::vector<double> samples) {
  Summary summary;
  summary.count = samples.size();
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  OnlineStats stats;
  for (double sample : samples) stats.Add(sample);
  summary.mean = stats.Mean();
  summary.stddev = stats.StdDev();
  summary.min = samples.front();
  summary.max = samples.back();
  summary.p50 = Percentile(samples, 0.50);
  summary.p90 = Percentile(samples, 0.90);
  summary.p99 = Percentile(samples, 0.99);
  return summary;
}

std::string Summary::ToString() const {
  std::ostringstream out;
  out << "n=" << count << " mean=" << mean << " sd=" << stddev
      << " min=" << min << " p50=" << p50 << " p90=" << p90 << " p99=" << p99
      << " max=" << max;
  return out.str();
}

double BernoulliEstimate::HalfWidth(double z) const {
  if (trials == 0) return 0.0;
  return z * std::sqrt(p_hat * (1.0 - p_hat) /
                       static_cast<double>(trials));
}

BernoulliEstimate EstimateBernoulli(std::size_t successes,
                                    std::size_t trials) {
  BernoulliEstimate estimate;
  estimate.trials = trials;
  estimate.p_hat =
      trials == 0 ? 0.0
                  : static_cast<double>(successes) / static_cast<double>(trials);
  return estimate;
}

}  // namespace ips
