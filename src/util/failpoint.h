// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Deterministic fault-injection points ("failpoints") for robustness
// testing. Production code marks named injection sites with
//
//   IPS_FAILPOINT("io/read");          // in Status-returning code
//   IPS_FAILPOINT_THROW("pool/task");  // in code without a Status channel
//
// and tests arm a site to fire on its Nth hit:
//
//   ScopedFailpoint fp("io/read", /*nth=*/2,
//                      Status::ResourceExhausted("disk full"));
//
// A fired failpoint early-returns the armed Status (or throws a
// FailpointError carrying it). Each armed site fires exactly once, so a
// test can also assert that the *next* call succeeds — graceful
// degradation, not poisoned state. When nothing is armed anywhere in the
// process, every site is a single relaxed atomic load.
//
// For *intermittent* faults (retry loops, circuit breakers, chaos under
// load) two repeating firing modes exist alongside the one-shot default:
//
//   Failpoints::Arm("serve/shard/query", Status::Unavailable("..."),
//                   FireEvery{4});          // hits 4, 8, 12, ... fire
//   Failpoints::Arm("serve/shard/slow", Status::Internal("..."),
//                   FireWithProb{0.25});    // each hit fires w.p. 0.25,
//                                           // deterministic per seed
//
// Coverage contract (ipslint failpoint-coverage pass): every literal
// site name in src/ must be armed somewhere in tests/chaos_test.cc —
// an injection point nobody ever fires is dead, untested error
// handling. Adding a site therefore means adding a chaos test (or, for
// a site that genuinely cannot fire under test, a one-line
// `// ipslint:allow(failpoint-coverage)` with a reason).

#ifndef IPS_UTIL_FAILPOINT_H_
#define IPS_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/status.h"

namespace ips {

/// Exception thrown by IPS_FAILPOINT_THROW sites; carries the armed
/// Status so pool-level catch blocks can convert it back losslessly.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Repeating firing mode: the site fires on every n-th hit after
/// arming (hits n, 2n, 3n, ...), not just once.
struct FireEvery {
  std::size_t n = 1;
};

/// Repeating firing mode: each hit fires independently with probability
/// `p`, drawn from a private splitmix64 stream seeded at arm time — the
/// firing pattern is a pure function of (seed, hit number), so chaos
/// runs replay bit-identically.
struct FireWithProb {
  double p = 1.0;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Process-wide registry of armed failpoints. All members are static and
/// thread-safe; arming is test-only, hitting is production-hot.
class Failpoints {
 public:
  /// Arms `name` to fire once on its `nth` hit (1-based) after this
  /// call, yielding `status`. Re-arming an armed site resets its count.
  static void Arm(const std::string& name, std::size_t nth = 1,
                  Status status = Status::Internal("injected failure"));

  /// Arms `name` to fire repeatedly on every `every.n`-th hit.
  static void Arm(const std::string& name, Status status, FireEvery every);

  /// Arms `name` to fire each hit with probability `prob.p`,
  /// deterministically from `prob.seed`.
  static void Arm(const std::string& name, Status status, FireWithProb prob);

  /// Disarms `name` (no-op when not armed).
  static void Disarm(const std::string& name);

  /// Disarms every failpoint (test teardown safety net).
  static void DisarmAll();

  /// Hits observed at `name` since it was armed (0 when not armed).
  static std::size_t HitCount(const std::string& name);

  /// True when any failpoint is armed in the process. The only cost a
  /// disarmed site pays.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path behind IPS_FAILPOINT: records a hit and returns the armed
  /// Status when `name` reaches its trigger, OK otherwise.
  static Status Hit(const char* name);

  /// Slow path behind IPS_FAILPOINT_THROW: as Hit, but throws
  /// FailpointError instead of returning the Status.
  static void HitOrThrow(const char* name);

 private:
  static std::atomic<std::size_t> armed_count_;
};

/// RAII arming for tests: disarms on scope exit even if the test fails.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string name, std::size_t nth = 1,
                           Status status = Status::Internal(
                               "injected failure"))
      : name_(std::move(name)) {
    Failpoints::Arm(name_, nth, std::move(status));
  }

  ScopedFailpoint(std::string name, Status status, FireEvery every)
      : name_(std::move(name)) {
    Failpoints::Arm(name_, std::move(status), every);
  }

  ScopedFailpoint(std::string name, Status status, FireWithProb prob)
      : name_(std::move(name)) {
    Failpoints::Arm(name_, std::move(status), prob);
  }

  ~ScopedFailpoint() { Failpoints::Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  /// Hits observed since arming.
  std::size_t hit_count() const { return Failpoints::HitCount(name_); }

 private:
  std::string name_;
};

}  // namespace ips

/// Marks a failpoint in a Status-returning function: early-returns the
/// armed Status when fired; free when nothing is armed.
#define IPS_FAILPOINT(name)                                   \
  do {                                                        \
    if (::ips::Failpoints::AnyArmed()) {                      \
      IPS_RETURN_IF_ERROR(::ips::Failpoints::Hit(name));      \
    }                                                         \
  } while (false)

/// Marks a failpoint in code without a Status channel: throws
/// FailpointError when fired; free when nothing is armed.
#define IPS_FAILPOINT_THROW(name)                             \
  do {                                                        \
    if (::ips::Failpoints::AnyArmed()) {                      \
      ::ips::Failpoints::HitOrThrow(name);                    \
    }                                                         \
  } while (false)

#endif  // IPS_UTIL_FAILPOINT_H_
