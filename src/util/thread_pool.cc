#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace ips {

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) work_done_.notify_all();
    }
  }
}

std::size_t ThreadPool::DefaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    body(0, count);
    return;
  }
  const std::size_t num_chunks = std::min(count, 4 * pool->num_threads());
  const std::size_t chunk = (count + num_chunks - 1) / num_chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, count);
    pool->Schedule([&body, begin, end] { body(begin, end); });
  }
  pool->Wait();
}

}  // namespace ips
