#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/check.h"
#include "util/failpoint.h"

namespace ips {

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::CaptureException(std::exception_ptr exception) {
  MutexLock lock(mutex_);
  if (first_exception_ == nullptr) first_exception_ = std::move(exception);
}

std::exception_ptr ThreadPool::TakeFirstException() {
  MutexLock lock(mutex_);
  return std::exchange(first_exception_, nullptr);
}

void ThreadPool::RunTask(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    CaptureException(std::current_exception());
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  // Injection site for "the executor refused the task" (queue full,
  // thread exhaustion...). A fired failpoint surfaces at the next
  // Wait()/WaitStatus() like any task failure would.
  if (Failpoints::AnyArmed()) {
    Status status = Failpoints::Hit("threadpool/schedule");
    if (!status.ok()) {
      CaptureException(
          std::make_exception_ptr(FailpointError(std::move(status))));
      return;
    }
  }
  if (threads_.empty()) {
    RunTask(task);
    return;
  }
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  if (!threads_.empty()) {
    MutexLock lock(mutex_);
    while (!(queue_.empty() && in_flight_ == 0)) work_done_.Wait(mutex_);
  }
  std::exception_ptr exception = TakeFirstException();
  if (exception != nullptr) std::rethrow_exception(exception);
}

Status ThreadPool::WaitStatus() {
  try {
    Wait();
  } catch (const FailpointError& error) {
    return error.status();
  } catch (const std::exception& error) {
    return Status::Internal(std::string("task failed: ") + error.what());
  } catch (...) {
    return Status::Internal("task failed with a non-standard exception");
  }
  return Status::Ok();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
      if (shutting_down_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    RunTask(task);
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) work_done_.NotifyAll();
    }
  }
}

std::size_t ThreadPool::DefaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

namespace {

// Shared between the chunks of one ParallelFor call. Heap-allocated and
// reference-counted so a chunk that is still finishing after Wait()
// rethrew (possible when a *pool-level* failure surfaced first) never
// touches a dead stack frame.
struct ParallelState {
  std::atomic<bool> cancelled{false};
  Mutex mutex;
  std::exception_ptr first_exception IPS_GUARDED_BY(mutex);
  Status first_status IPS_GUARDED_BY(mutex);

  void Fail(std::exception_ptr exception) IPS_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (first_exception == nullptr) {
      first_exception = std::move(exception);
    }
    cancelled.store(true, std::memory_order_relaxed);
  }

  void Fail(Status status) IPS_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (first_status.ok()) first_status = std::move(status);
    cancelled.store(true, std::memory_order_relaxed);
  }
};

template <typename ChunkRunner>
void RunChunks(ThreadPool* pool, std::size_t count,
               const std::shared_ptr<ParallelState>& state,
               const ChunkRunner& run_chunk) {
  const std::size_t num_chunks = std::min(count, 4 * pool->num_threads());
  const std::size_t chunk = (count + num_chunks - 1) / num_chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, count);
    pool->Schedule([state, run_chunk, begin, end] {
      if (state->cancelled.load(std::memory_order_relaxed)) return;
      run_chunk(*state, begin, end);
    });
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    body(0, count);
    return;
  }
  auto state = std::make_shared<ParallelState>();
  RunChunks(pool, count, state,
            [&body](ParallelState& shared, std::size_t begin,
                    std::size_t end) {
              try {
                body(begin, end);
              } catch (...) {
                shared.Fail(std::current_exception());
              }
            });
  pool->Wait();  // rethrows pool-level failures (e.g. Schedule failpoint)
  MutexLock lock(state->mutex);
  if (state->first_exception != nullptr) {
    std::rethrow_exception(state->first_exception);
  }
}

Status ParallelForStatus(
    ThreadPool* pool, std::size_t count,
    const std::function<Status(std::size_t, std::size_t)>& body) {
  if (count == 0) return Status::Ok();
  if (pool == nullptr || pool->num_threads() <= 1) {
    try {
      return body(0, count);
    } catch (const FailpointError& error) {
      return error.status();
    } catch (const std::exception& error) {
      return Status::Internal(std::string("parallel body threw: ") +
                              error.what());
    } catch (...) {
      return Status::Internal(
          "parallel body threw a non-standard exception");
    }
  }
  auto state = std::make_shared<ParallelState>();
  RunChunks(pool, count, state,
            [&body](ParallelState& shared, std::size_t begin,
                    std::size_t end) {
              Status status;
              try {
                status = body(begin, end);
              } catch (const FailpointError& error) {
                status = error.status();
              } catch (const std::exception& error) {
                status = Status::Internal(
                    std::string("parallel body threw: ") + error.what());
              } catch (...) {
                status = Status::Internal(
                    "parallel body threw a non-standard exception");
              }
              if (!status.ok()) shared.Fail(std::move(status));
            });
  Status pool_status = pool->WaitStatus();
  MutexLock lock(state->mutex);
  if (!state->first_status.ok()) return state->first_status;
  return pool_status;
}

}  // namespace ips
