#include "util/table.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <ostream>

#include "util/check.h"

namespace ips {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  IPS_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  IPS_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::PrintMarkdown(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << std::setw(static_cast<int>(widths[c])) << std::left
          << row[c] << " |";
    }
    out << "\n";
  };
  print_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatFixed(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

std::string FormatSci(double value, int digits) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(digits) << value;
  return out.str();
}

bool MaybeExportCsv(const TablePrinter& table, const std::string& name) {
  const char* dir = std::getenv("IPS_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream file(path);
  if (!file.is_open()) return false;
  table.PrintCsv(file);
  return true;
}

}  // namespace ips
