// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Clang thread-safety annotations (see DESIGN.md §9) and the annotated
// mutex primitives the concurrent layers are written against. Under
// clang, `-Wthread-safety -Werror` turns lock-discipline violations —
// touching an IPS_GUARDED_BY member without its mutex, releasing a lock
// twice, forgetting a lock on one branch — into compile errors; under
// other compilers every macro expands to nothing and the wrappers are
// zero-cost shims over <mutex>.
//
// Usage pattern:
//
//   class Account {
//    public:
//     void Deposit(int amount) IPS_EXCLUDES(mutex_) {
//       MutexLock lock(mutex_);
//       balance_ += amount;            // OK: mutex_ held
//     }
//    private:
//     Mutex mutex_;
//     int balance_ IPS_GUARDED_BY(mutex_) = 0;
//   };
//
// Condition variables use CondVar, which waits on the annotated Mutex
// directly (it is a std::condition_variable_any underneath), so the
// wait loop stays visible to the analysis:
//
//   MutexLock lock(mutex_);
//   while (queue_.empty()) work_available_.Wait(mutex_);

#ifndef IPS_UTIL_THREAD_ANNOTATIONS_H_
#define IPS_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define IPS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define IPS_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define IPS_CAPABILITY(x) IPS_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define IPS_SCOPED_CAPABILITY IPS_THREAD_ANNOTATION__(scoped_lockable)

/// A data member readable/writable only while holding the given mutex.
#define IPS_GUARDED_BY(x) IPS_THREAD_ANNOTATION__(guarded_by(x))

/// A pointer member whose *pointee* is protected by the given mutex.
#define IPS_PT_GUARDED_BY(x) IPS_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The calling thread must hold the given mutexes (and does not release
/// them).
#define IPS_REQUIRES(...) \
  IPS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The function acquires the given mutexes and holds them on return.
#define IPS_ACQUIRE(...) \
  IPS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function releases the given mutexes (held on entry).
#define IPS_RELEASE(...) \
  IPS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The function acquires the mutex only when it returns the given value.
#define IPS_TRY_ACQUIRE(...) \
  IPS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the given mutexes (the function acquires
/// them itself; prevents self-deadlock).
#define IPS_EXCLUDES(...) IPS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (analysis trusts it).
#define IPS_ASSERT_CAPABILITY(x) IPS_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the given mutex.
#define IPS_RETURN_CAPABILITY(x) IPS_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment explaining why the discipline cannot be expressed.
#define IPS_NO_THREAD_SAFETY_ANALYSIS \
  IPS_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Declared lock ordering, on a mutex member: this mutex is acquired
/// before the named ones (`IPS_ACQUIRED_BEFORE(Counter::mutex_)`), or
/// after (`IPS_ACQUIRED_AFTER`). Consumed by ipslint's lock-order pass
/// (tools/ipslint_analysis.h), which merges these declared edges with
/// the lexically observed acquisition graph and fails on any cycle —
/// which is why these expand to nothing under every compiler: clang's
/// own acquired_before attribute is beta-gated and cannot name a
/// private member of another class, and the arguments here routinely
/// do (`Counter::mutex_`). Arguments are identifiers, not strings, so
/// they survive the linter's string-stripping and stay greppable.
#define IPS_ACQUIRED_BEFORE(...)  // lock-order fact; checked by ipslint
#define IPS_ACQUIRED_AFTER(...)   // lock-order fact; checked by ipslint

namespace ips {

/// std::mutex with a capability annotation, so IPS_GUARDED_BY members
/// and MutexLock scopes are checkable. Satisfies BasicLockable (lower
/// case lock/unlock), so it also works with std::scoped_lock and
/// CondVar below.
class IPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IPS_ACQUIRE() { mutex_.lock(); }
  void unlock() IPS_RELEASE() { mutex_.unlock(); }
  bool try_lock() IPS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII lock of a Mutex (the annotated std::lock_guard). The analysis
/// treats the constructor as acquiring and the destructor as releasing,
/// so guarded members are accessible exactly inside the lock's scope.
class IPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) IPS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() IPS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable waiting on the annotated Mutex directly. Wait
/// takes no predicate on purpose: callers loop
/// `while (!cond) cv.Wait(mutex_);` inside a MutexLock scope, keeping
/// every read of guarded state visible to the analysis (a predicate
/// lambda would be analyzed as an unlocked context).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and reacquires it before
  /// returning. As with any condition variable, spurious wakeups happen:
  /// always re-check the condition in a loop.
  void Wait(Mutex& mutex) IPS_REQUIRES(mutex) { cv_.wait(mutex); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ips

#endif  // IPS_UTIL_THREAD_ANNOTATIONS_H_
