// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Tabular output used by the benchmark harness to print paper-style tables
// (Markdown for humans, CSV for downstream plotting).

#ifndef IPS_UTIL_TABLE_H_
#define IPS_UTIL_TABLE_H_

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace ips {

/// Collects rows of stringified cells and renders them aligned.
///
/// Usage:
///   TablePrinter table({"n", "time (ms)", "speedup"});
///   table.AddRow({Format(n), Format(ms), Format(speedup)});
///   table.PrintMarkdown(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders a GitHub-flavored Markdown table with aligned columns.
  void PrintMarkdown(std::ostream& out) const;

  /// Renders comma-separated values (header first).
  void PrintCsv(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a value via operator<< (floating point with up to 6 significant
/// digits by default).
template <typename T>
std::string Format(const T& value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

/// Formats a double with fixed `digits` after the decimal point.
std::string FormatFixed(double value, int digits);

/// Formats a double in scientific notation with `digits` mantissa digits.
std::string FormatSci(double value, int digits);

/// When the IPS_BENCH_CSV_DIR environment variable is set, writes the
/// table as CSV to "$IPS_BENCH_CSV_DIR/<name>.csv" (for downstream
/// plotting); otherwise does nothing. Returns true when a file was
/// written.
bool MaybeExportCsv(const TablePrinter& table, const std::string& name);

}  // namespace ips

#endif  // IPS_UTIL_TABLE_H_
