// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Fatal-error checking macros in the spirit of glog/absl CHECK.
// Programmer errors (violated preconditions, broken invariants) abort the
// process with a readable message; recoverable conditions use util::Status.

#ifndef IPS_UTIL_CHECK_H_
#define IPS_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace ips {
namespace internal {

/// Stream-collecting helper that aborts the process on destruction.
/// Used only through the IPS_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failure at " << file << ":" << line << ": "
            << condition;
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ips

/// Aborts with a message unless `condition` evaluates to true.
#define IPS_CHECK(condition)                                              \
  while (!(condition))                                                    \
  ::ips::internal::CheckFailureStream("IPS_CHECK", __FILE__, __LINE__,    \
                                      #condition)

#define IPS_CHECK_BINARY(name, lhs, rhs, op)                            \
  while (!((lhs)op(rhs)))                                               \
  ::ips::internal::CheckFailureStream(name, __FILE__, __LINE__,         \
                                      #lhs " " #op " " #rhs)            \
      << "(lhs=" << (lhs) << ", rhs=" << (rhs) << ")"

#define IPS_CHECK_EQ(lhs, rhs) IPS_CHECK_BINARY("IPS_CHECK_EQ", lhs, rhs, ==)
#define IPS_CHECK_NE(lhs, rhs) IPS_CHECK_BINARY("IPS_CHECK_NE", lhs, rhs, !=)
#define IPS_CHECK_LT(lhs, rhs) IPS_CHECK_BINARY("IPS_CHECK_LT", lhs, rhs, <)
#define IPS_CHECK_LE(lhs, rhs) IPS_CHECK_BINARY("IPS_CHECK_LE", lhs, rhs, <=)
#define IPS_CHECK_GT(lhs, rhs) IPS_CHECK_BINARY("IPS_CHECK_GT", lhs, rhs, >)
#define IPS_CHECK_GE(lhs, rhs) IPS_CHECK_BINARY("IPS_CHECK_GE", lhs, rhs, >=)

#ifdef NDEBUG
#define IPS_DCHECK(condition) IPS_CHECK(true || (condition))
#else
#define IPS_DCHECK(condition) IPS_CHECK(condition)
#endif

#endif  // IPS_UTIL_CHECK_H_
