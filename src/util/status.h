// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Minimal Status / StatusOr<T> error-propagation types, modeled on
// absl::Status. The library does not throw exceptions across its public
// API; recoverable failures are reported through these types.
//
// Both types are [[nodiscard]]: with the tree's -Werror, silently
// dropping a Status(Or) return is a compile error. Consume it with
// IPS_RETURN_IF_ERROR / IPS_CHECK_OK, branch on .ok(), or — only where
// ignoring a failure is genuinely the contract — cast to void with a
// comment explaining why.

#ifndef IPS_UTIL_STATUS_H_
#define IPS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace ips {

/// Broad machine-readable error categories.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kResourceExhausted = 7,
  kDeadlineExceeded = 8,
  /// A dependency (shard, transport, remote replica) is transiently
  /// unable to serve. Unlike kResourceExhausted (deliberate load
  /// shedding -- do not retry) this is the one retryable code: retry
  /// policies (serve/sharded_engine.h) back off and try again.
  kUnavailable = 9,
  /// Persisted bytes are unrecoverably damaged: a snapshot section
  /// failed its CRC, a file was truncated mid-section, or a header is
  /// self-inconsistent (src/storage). Not retryable — the bytes on
  /// disk are wrong, not the request.
  kDataLoss = 10,
};

/// Returns a short human-readable name of `code` ("OK", "INVALID_ARGUMENT"...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without crashing the process.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value (OK).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    IPS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    IPS_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    IPS_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    IPS_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Aborts if `expr` yields a non-OK status.
#define IPS_CHECK_OK(expr)                               \
  do {                                                   \
    const ::ips::Status ips_check_ok_status = (expr);    \
    IPS_CHECK(ips_check_ok_status.ok())                  \
        << ips_check_ok_status.ToString();               \
  } while (false)

/// Early-returns a non-OK status from the enclosing function.
#define IPS_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::ips::Status ips_return_status = (expr);            \
    if (!ips_return_status.ok()) return ips_return_status; \
  } while (false)

}  // namespace ips

#endif  // IPS_UTIL_STATUS_H_
