#include "hardness/reduction.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/check.h"
#include "util/timer.h"

namespace ips {

std::optional<std::pair<std::size_t, std::size_t>> BruteForceJoinOracle(
    const Matrix& p, const Matrix& q, double s, double cs, bool is_signed) {
  (void)cs;  // The exact scan can afford the strict threshold s.
  for (std::size_t i = 0; i < p.rows(); ++i) {
    for (std::size_t j = 0; j < q.rows(); ++j) {
      const double value = kernels::Dot(p.Row(i), q.Row(j));
      const double score = is_signed ? value : std::abs(value);
      if (score >= s) return std::make_pair(i, j);
    }
  }
  return std::nullopt;
}

std::pair<Matrix, Matrix> EmbedOvpInstance(const OvpInstance& instance,
                                           const GapEmbedding& embedding) {
  IPS_CHECK_EQ(instance.a.cols(), embedding.input_dim());
  IPS_CHECK_EQ(instance.b.cols(), embedding.input_dim());
  Matrix p;
  for (std::size_t i = 0; i < instance.a.rows(); ++i) {
    p.AppendRow(embedding.EmbedLeft(instance.a.RowAsDense(i)));
  }
  Matrix q;
  for (std::size_t j = 0; j < instance.b.rows(); ++j) {
    q.AppendRow(embedding.EmbedRight(instance.b.RowAsDense(j)));
  }
  return {std::move(p), std::move(q)};
}

ReductionResult SolveOvpViaEmbedding(const OvpInstance& instance,
                                     const GapEmbedding& embedding,
                                     const JoinOracle& oracle) {
  ReductionResult result;
  WallTimer timer;
  auto [p, q] = EmbedOvpInstance(instance, embedding);
  result.embed_seconds = timer.Seconds();
  result.embedded_dim = p.cols();

  timer.Restart();
  const auto pair =
      oracle(p, q, embedding.s(), embedding.cs(), embedding.IsSigned());
  result.join_seconds = timer.Seconds();

  if (pair.has_value()) {
    // Translate back and verify against the original binary instance.
    IPS_CHECK(instance.a.OrthogonalRows(pair->first, instance.b,
                                        pair->second))
        << "join reported a non-orthogonal pair: the gap promise or the "
           "oracle is broken";
    result.pair = pair;
  }
  return result;
}

}  // namespace ips
