// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The Lemma 2 pipeline: OVP instance -> gap embedding -> (cs, s) IPS
// join -> orthogonal pair. Given a (d1, d2, cs, s)-gap embedding (f, g),
// the embedded sets f(A), g(B) have maximum (absolute) inner product
// >= s exactly when the OVP instance contains an orthogonal pair, so any
// algorithm for the (cs, s) join decides -- and recovers a witness for --
// OVP. A truly subquadratic join would therefore break the OVP
// conjecture (Theorem 1).

#ifndef IPS_HARDNESS_REDUCTION_H_
#define IPS_HARDNESS_REDUCTION_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>

#include "embed/gap_embedding.h"
#include "hardness/ovp.h"
#include "linalg/matrix.h"

namespace ips {

/// A (cs, s) join oracle over embedded point sets: returns some pair
/// (row of P, row of Q) with (|.| if unsigned) inner product >= cs,
/// under the promise that a pair with value >= s exists; nullopt when
/// it finds none.
using JoinOracle = std::function<std::optional<std::pair<std::size_t,
                                                         std::size_t>>(
    const Matrix& p, const Matrix& q, double s, double cs, bool is_signed)>;

/// The default oracle: exact quadratic scan. Returns the first pair with
/// value >= s (not merely cs), matching the exactness of brute force.
std::optional<std::pair<std::size_t, std::size_t>> BruteForceJoinOracle(
    const Matrix& p, const Matrix& q, double s, double cs, bool is_signed);

/// Outcome and accounting of one reduction run.
struct ReductionResult {
  /// The orthogonal pair found (a-index, b-index), if any.
  std::optional<std::pair<std::size_t, std::size_t>> pair;
  /// d2': dimension after embedding.
  std::size_t embedded_dim = 0;
  /// Wall-clock spent embedding both sets.
  double embed_seconds = 0.0;
  /// Wall-clock spent inside the join oracle.
  double join_seconds = 0.0;
};

/// Runs the full Lemma 2 reduction: embeds instance.a via f = EmbedLeft
/// and instance.b via g = EmbedRight, calls `oracle` (defaults to the
/// brute-force scan) with the embedding's (s, cs) thresholds, and
/// translates the reported pair back to OVP indices. The returned pair,
/// when present, is verified orthogonal in the original instance.
ReductionResult SolveOvpViaEmbedding(const OvpInstance& instance,
                                     const GapEmbedding& embedding,
                                     const JoinOracle& oracle =
                                         BruteForceJoinOracle);

/// Embeds both sides of an OVP instance into dense matrices (f on A,
/// g on B). Exposed for benchmarks that time embedding separately.
std::pair<Matrix, Matrix> EmbedOvpInstance(const OvpInstance& instance,
                                           const GapEmbedding& embedding);

}  // namespace ips

#endif  // IPS_HARDNESS_REDUCTION_H_
