// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The Orthogonal Vectors Problem (Definition 3): given sets A, B of
// binary vectors in {0,1}^d, decide whether some pair a in A, b in B has
// a^T b = 0. The OVP conjecture (Williams [56]) -- no O(n^(2-eps))
// algorithm for d = omega(log n) -- is the hardness source of Theorems 1
// and 2. This header provides instance generation (with an optional
// planted orthogonal pair) and the exact bit-parallel baseline solver.

#ifndef IPS_HARDNESS_OVP_H_
#define IPS_HARDNESS_OVP_H_

#include <cstddef>
#include <optional>
#include <utility>

#include "linalg/bit_matrix.h"
#include "rng/random.h"

namespace ips {

/// An OVP instance: two sets of binary vectors of equal dimension.
struct OvpInstance {
  BitMatrix a;
  BitMatrix b;
  /// Set when the generator planted an orthogonal pair.
  std::optional<std::pair<std::size_t, std::size_t>> planted;
};

/// Options for GenerateOvpInstance.
struct OvpOptions {
  std::size_t size_a = 64;
  std::size_t size_b = 64;
  std::size_t dim = 32;
  /// Probability of a 1 in each coordinate. At density 1/2 a random pair
  /// is orthogonal with probability (3/4)^d, negligible for d >> log n.
  double density = 0.5;
  /// Whether to plant one orthogonal pair at random positions.
  bool plant_orthogonal_pair = true;
};

/// Samples an OVP instance per `options`. When planting, a random
/// (a, b) position pair is made orthogonal by clearing b's bits on a's
/// support; all other pairs remain i.i.d. random.
OvpInstance GenerateOvpInstance(const OvpOptions& options, Rng* rng);

/// Exact quadratic-time OVP baseline using word-parallel AND/popcount.
/// Returns the first orthogonal pair (a-index, b-index), if any.
std::optional<std::pair<std::size_t, std::size_t>> SolveOvpExact(
    const OvpInstance& instance);

/// Count of all orthogonal pairs (diagnostic; quadratic).
std::size_t CountOrthogonalPairs(const OvpInstance& instance);

}  // namespace ips

#endif  // IPS_HARDNESS_OVP_H_
