#include "hardness/sign_pipeline.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"
#include "util/timer.h"

namespace ips {
namespace {

SignMatrix PackEmbedded(const BitMatrix& inputs, const GapEmbedding& embedding,
                        bool left) {
  SignMatrix packed(inputs.rows(), embedding.output_dim());
  for (std::size_t i = 0; i < inputs.rows(); ++i) {
    const std::vector<double> dense = inputs.RowAsDense(i);
    const std::vector<double> embedded =
        left ? embedding.EmbedLeft(dense) : embedding.EmbedRight(dense);
    for (std::size_t t = 0; t < embedded.size(); ++t) {
      packed.Set(i, t, embedded[t] > 0 ? 1 : -1);
    }
  }
  return packed;
}

}  // namespace

std::pair<SignMatrix, SignMatrix> EmbedOvpInstanceSigned(
    const OvpInstance& instance, const GapEmbedding& embedding) {
  IPS_CHECK(embedding.domain() == EmbeddingDomain::kSign)
      << "sign pipeline requires a {-1,1} embedding";
  return {PackEmbedded(instance.a, embedding, /*left=*/true),
          PackEmbedded(instance.b, embedding, /*left=*/false)};
}

std::optional<std::pair<std::size_t, std::size_t>> SignJoin(
    const SignMatrix& p, const SignMatrix& q, double s, bool is_signed) {
  for (std::size_t i = 0; i < p.rows(); ++i) {
    for (std::size_t j = 0; j < q.rows(); ++j) {
      const std::int64_t value = p.DotRows(i, q, j);
      const std::int64_t score = is_signed ? value : std::abs(value);
      if (static_cast<double>(score) >= s) return std::make_pair(i, j);
    }
  }
  return std::nullopt;
}

ReductionResult SolveOvpViaSignEmbedding(const OvpInstance& instance,
                                         const GapEmbedding& embedding) {
  ReductionResult result;
  WallTimer timer;
  const auto [p, q] = EmbedOvpInstanceSigned(instance, embedding);
  result.embed_seconds = timer.Seconds();
  result.embedded_dim = p.cols();

  timer.Restart();
  const auto pair = SignJoin(p, q, embedding.s(), embedding.IsSigned());
  result.join_seconds = timer.Seconds();

  if (pair.has_value()) {
    IPS_CHECK(instance.a.OrthogonalRows(pair->first, instance.b,
                                        pair->second))
        << "sign join reported a non-orthogonal pair";
    result.pair = pair;
  }
  return result;
}

}  // namespace ips
