// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Bit-parallel fast path for the hardness pipeline on sign-domain
// embeddings: the {-1,1}-valued gap embeddings (Lemma 3, embeddings 1
// and 2) are packed into SignMatrix rows, so the join over the embedded
// sets runs on XOR/popcount words -- typically 20-60x faster than the
// dense-double scan at identical results. This is the representation a
// production implementation of the reduction would actually use.

#ifndef IPS_HARDNESS_SIGN_PIPELINE_H_
#define IPS_HARDNESS_SIGN_PIPELINE_H_

#include <optional>
#include <utility>

#include "embed/gap_embedding.h"
#include "hardness/ovp.h"
#include "hardness/reduction.h"
#include "linalg/sign_matrix.h"

namespace ips {

/// Embeds both sides of an OVP instance through a sign-domain embedding
/// (embedding.domain() must be kSign) into packed SignMatrix form.
std::pair<SignMatrix, SignMatrix> EmbedOvpInstanceSigned(
    const OvpInstance& instance, const GapEmbedding& embedding);

/// Exact (cs, s) join over packed sign vectors: first pair whose
/// (absolute, for unsigned embeddings) integer inner product reaches
/// `s`. Word-parallel popcount kernel.
std::optional<std::pair<std::size_t, std::size_t>> SignJoin(
    const SignMatrix& p, const SignMatrix& q, double s, bool is_signed);

/// The full reduction on the packed representation; result fields match
/// SolveOvpViaEmbedding (pair verified orthogonal on the original
/// instance).
ReductionResult SolveOvpViaSignEmbedding(const OvpInstance& instance,
                                         const GapEmbedding& embedding);

}  // namespace ips

#endif  // IPS_HARDNESS_SIGN_PIPELINE_H_
