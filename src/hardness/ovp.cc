#include "hardness/ovp.h"

#include "util/check.h"

namespace ips {

OvpInstance GenerateOvpInstance(const OvpOptions& options, Rng* rng) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(options.size_a, 0u);
  IPS_CHECK_GT(options.size_b, 0u);
  IPS_CHECK_GT(options.dim, 0u);
  IPS_CHECK_GE(options.density, 0.0);
  IPS_CHECK_LE(options.density, 1.0);
  OvpInstance instance;
  instance.a = BitMatrix(options.size_a, options.dim);
  instance.b = BitMatrix(options.size_b, options.dim);
  for (std::size_t i = 0; i < options.size_a; ++i) {
    for (std::size_t j = 0; j < options.dim; ++j) {
      if (rng->NextBernoulli(options.density)) instance.a.Set(i, j, true);
    }
  }
  for (std::size_t i = 0; i < options.size_b; ++i) {
    for (std::size_t j = 0; j < options.dim; ++j) {
      if (rng->NextBernoulli(options.density)) instance.b.Set(i, j, true);
    }
  }
  if (options.plant_orthogonal_pair) {
    const std::size_t pa =
        static_cast<std::size_t>(rng->NextBounded(options.size_a));
    const std::size_t pb =
        static_cast<std::size_t>(rng->NextBounded(options.size_b));
    for (std::size_t j = 0; j < options.dim; ++j) {
      if (instance.a.Get(pa, j)) instance.b.Set(pb, j, false);
    }
    instance.planted = {pa, pb};
  }
  return instance;
}

std::optional<std::pair<std::size_t, std::size_t>> SolveOvpExact(
    const OvpInstance& instance) {
  for (std::size_t i = 0; i < instance.a.rows(); ++i) {
    for (std::size_t j = 0; j < instance.b.rows(); ++j) {
      if (instance.a.OrthogonalRows(i, instance.b, j)) {
        return std::make_pair(i, j);
      }
    }
  }
  return std::nullopt;
}

std::size_t CountOrthogonalPairs(const OvpInstance& instance) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < instance.a.rows(); ++i) {
    for (std::size_t j = 0; j < instance.b.rows(); ++j) {
      if (instance.a.OrthogonalRows(i, instance.b, j)) ++count;
    }
  }
  return count;
}

}  // namespace ips
