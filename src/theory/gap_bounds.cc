#include "theory/gap_bounds.h"

#include <algorithm>
#include <cmath>

#include "theory/lemma4.h"
#include "util/check.h"

namespace ips {
namespace {

std::size_t AtLeastTwo(double value) {
  return static_cast<std::size_t>(std::max(2.0, std::floor(value)));
}

}  // namespace

std::size_t Case1SequenceLength(std::size_t d, double U, double s, double c) {
  IPS_CHECK_GE(d, 1u);
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  const double planes = d == 1 ? 1.0 : static_cast<double>(d) / 2.0;
  const double steps = std::log(U / s) / std::log(1.0 / c);
  return AtLeastTwo(planes * steps);
}

std::size_t Case2SequenceLength(std::size_t d, double U, double s, double c) {
  IPS_CHECK_GE(d, 2u);
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  const double planes = static_cast<double>(d) / 2.0;
  const double steps = std::sqrt(U / (s * (1.0 - c)));
  return AtLeastTwo(planes * steps);
}

std::size_t Case3SequenceLength(double U, double s) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GE(U, 8.0 * s);
  const double levels = std::floor(std::sqrt(U / (8.0 * s)));
  IPS_CHECK_LT(levels, 63.0) << "case 3 sequence length overflows";
  return (1ULL << static_cast<std::size_t>(levels)) - 1;
}

double Case1GapBound(std::size_t d, double U, double s, double c) {
  return Lemma4GapBound(Case1SequenceLength(d, U, s, c));
}

double Case2GapBound(std::size_t d, double U, double s, double c) {
  return Lemma4GapBound(Case2SequenceLength(d, U, s, c));
}

double Case3GapBound(double U, double s) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GE(U, 8.0 * s);
  // The sequence has length 2^levels - 1, so Lemma 4 gives essentially
  // 1/(8 levels) = Theta(sqrt(s/U)); computed directly because 2^levels
  // overflows any integer type long before U gets interesting.
  const double levels = std::floor(std::sqrt(U / (8.0 * s)));
  return 1.0 / (8.0 * std::max(1.0, levels));
}

}  // namespace ips
