#include "theory/lemma4_accounting.h"

#include <cmath>
#include <memory>

#include "util/check.h"

namespace ips {
namespace {

// ell with 2^ell - 1 == n; CHECK-fails otherwise.
std::size_t EllFor(std::size_t n) {
  std::size_t ell = 0;
  std::size_t value = n + 1;
  while (value > 1) {
    IPS_CHECK_EQ(value % 2, 0u)
        << "sequence length must be 2^ell - 1, got " << n;
    value /= 2;
    ++ell;
  }
  IPS_CHECK_GE(ell, 1u);
  return ell;
}

}  // namespace

bool MassAccounting::ProperMassBoundHolds(double slack) const {
  return total_proper_mass <= 2.0 * static_cast<double>(n) + slack;
}

bool MassAccounting::SharedMassBoundsHold(double slack) const {
  for (const SquareMasses& entry : squares) {
    const double side = static_cast<double>(entry.square.side);
    if (entry.shared > side * side * p2_hat + slack) return false;
  }
  return true;
}

bool MassAccounting::PartiallySharedBoundsHold(double slack) const {
  for (const SquareMasses& entry : squares) {
    const double factor = 2.0 * static_cast<double>(entry.square.side);
    if (entry.partially_shared > factor * entry.proper + slack) return false;
  }
  return true;
}

bool MassAccounting::TotalMassLowerBoundsHold(double slack) const {
  for (const SquareMasses& entry : squares) {
    const double side = static_cast<double>(entry.square.side);
    if (entry.total < side * side * p1_hat - slack) return false;
  }
  return true;
}

MassAccounting ComputeLemma4Accounting(const LshFamily& family,
                                       const HardSequences& sequences,
                                       std::size_t samples, Rng* rng) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(samples, 0u);
  const std::size_t n = sequences.data.rows();
  IPS_CHECK_EQ(n, sequences.queries.rows());

  MassAccounting result;
  result.n = n;
  result.ell = EllFor(n);
  result.proper_mass = Matrix(n, n);
  result.partially_shared_mass = Matrix(n, n);
  result.shared_mass = Matrix(n, n);

  // anchor(i, j): the top-left index of the square G_{r,s} containing
  // the P1-node (i, j). Precompute via the partition.
  const std::vector<GridSquare> partition = LowerTrianglePartition(result.ell);
  Matrix anchor_of(n, n);
  for (const GridSquare& square : partition) {
    for (std::size_t i = square.anchor + 1 - square.side; i <= square.anchor;
         ++i) {
      for (std::size_t j = square.anchor; j < square.anchor + square.side;
           ++j) {
        anchor_of.At(i, j) = static_cast<double>(square.anchor);
      }
    }
  }

  Matrix collision_counts(n, n);
  const double weight = 1.0 / static_cast<double>(samples);
  std::vector<std::uint64_t> qh(n);
  std::vector<std::uint64_t> dh(n);
  for (std::size_t sample = 0; sample < samples; ++sample) {
    const std::unique_ptr<LshFunction> h = family.Sample(rng);
    for (std::size_t i = 0; i < n; ++i) {
      qh[i] = h->HashQuery(sequences.queries.Row(i));
    }
    for (std::size_t j = 0; j < n; ++j) {
      dh[j] = h->HashData(sequences.data.Row(j));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (qh[i] != dh[j]) continue;
        collision_counts.At(i, j) += 1.0;
        if (j < i) continue;  // P2 node: counted, not classified
        const std::uint64_t v = qh[i];
        const std::size_t anchor =
            static_cast<std::size_t>(anchor_of.At(i, j));
        // Row neighbors (i, j'), i <= j' < j, split at the anchor:
        // j' < anchor lies in a left square, j' >= anchor inside G_{r,s}.
        bool row_outer = false;
        bool row_inner = false;
        for (std::size_t jp = i; jp < j; ++jp) {
          if (dh[jp] != v) continue;
          if (jp < anchor) {
            row_outer = true;
          } else {
            row_inner = true;
          }
        }
        // Column neighbors (i', j), i < i' <= j: i' > anchor lies in a
        // top square, i' <= anchor inside G_{r,s}.
        bool col_outer = false;
        bool col_inner = false;
        for (std::size_t ip = i + 1; ip <= j; ++ip) {
          if (qh[ip] != v) continue;
          if (ip > anchor) {
            col_outer = true;
          } else {
            col_inner = true;
          }
        }
        if (row_outer && col_outer) {
          result.shared_mass.At(i, j) += weight;
        } else if ((row_outer || row_inner) && (col_outer || col_inner)) {
          result.partially_shared_mass.At(i, j) += weight;
        } else {
          result.proper_mass.At(i, j) += weight;
        }
      }
    }
  }

  // Empirical P1 / P2 from the collision counts.
  result.p1_hat = 1.0;
  result.p2_hat = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double probability = collision_counts.At(i, j) * weight;
      if (j >= i) {
        result.p1_hat = std::min(result.p1_hat, probability);
      } else {
        result.p2_hat = std::max(result.p2_hat, probability);
      }
    }
  }

  // Per-square aggregation.
  result.squares.reserve(partition.size());
  for (const GridSquare& square : partition) {
    SquareMasses entry;
    entry.square = square;
    for (std::size_t i = square.anchor + 1 - square.side; i <= square.anchor;
         ++i) {
      for (std::size_t j = square.anchor; j < square.anchor + square.side;
           ++j) {
        entry.proper += result.proper_mass.At(i, j);
        entry.partially_shared += result.partially_shared_mass.At(i, j);
        entry.shared += result.shared_mass.At(i, j);
        entry.total += collision_counts.At(i, j) * weight;
      }
    }
    result.total_proper_mass += entry.proper;
    result.squares.push_back(entry);
  }
  return result;
}

}  // namespace ips
