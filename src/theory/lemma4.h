// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The Lemma 4 machinery (and Figure 1): the exponential partition of the
// lower triangle of the n x n collision grid into squares G_{r,s}, and
// the empirical verifier that measures the collision-probability gap
// P1 - P2 of a concrete (A)LSH family on staircase sequences, comparing
// it to the lemma's 1/(8 log n) upper bound.

#ifndef IPS_THEORY_LEMMA4_H_
#define IPS_THEORY_LEMMA4_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "lsh/lsh_family.h"
#include "rng/random.h"
#include "theory/hard_sequences.h"

namespace ips {

/// One square G_{r,s} of the Figure 1 partition: side 2^r, top-left grid
/// node (anchor, anchor) with anchor = (2s+1) 2^r - 1.
struct GridSquare {
  std::size_t r = 0;
  std::size_t s = 0;
  std::size_t side = 0;    // 2^r
  std::size_t anchor = 0;  // top-left row == column index
};

/// All squares of the partition of the lower triangle {(i, j) : j >= i}
/// of the (2^ell - 1) x (2^ell - 1) grid: r in [0, ell),
/// s in [0, 2^(ell-r-1)).
std::vector<GridSquare> LowerTrianglePartition(std::size_t ell);

/// True iff grid node (i, j) lies in `square` (rows i in
/// [anchor - side + 1, anchor], columns j in [anchor, anchor + side - 1]).
bool SquareContains(const GridSquare& square, std::size_t i, std::size_t j);

/// Lemma 4's bound on the gap for staircase sequences of length n >= 2:
/// P1 - P2 <= 1 / (8 log2 n).
double Lemma4GapBound(std::size_t n);

/// Empirical collision matrix m_{i,j} ~ Pr_H[h_q(q_i) = h_p(p_j)] of a
/// family on given sequences, estimated from `samples` fresh draws.
class CollisionMatrix {
 public:
  CollisionMatrix(const LshFamily& family, const HardSequences& sequences,
                  std::size_t samples, Rng* rng);

  std::size_t n() const { return probabilities_.rows(); }

  /// Estimated Pr[h_q(q_i) = h_p(p_j)].
  double At(std::size_t i, std::size_t j) const {
    return probabilities_.At(i, j);
  }

  /// min over the lower triangle (j >= i): the realized P1.
  double EmpiricalP1() const;

  /// max over the strict upper triangle (j < i): the realized P2.
  double EmpiricalP2() const;

  /// EmpiricalP1() - EmpiricalP2(); Lemma 4 says this cannot exceed
  /// 1/(8 log n) for a valid asymmetric LSH.
  double EmpiricalGap() const { return EmpiricalP1() - EmpiricalP2(); }

 private:
  Matrix probabilities_;
};

}  // namespace ips

#endif  // IPS_THEORY_LEMMA4_H_
