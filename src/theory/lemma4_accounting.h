// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The Lemma 4 mass accounting, executable. The lemma's proof classifies,
// for every P1-node (i, j) of the collision grid (j >= i) and every hash
// function h under which (i, j) collides, the function h as
//
//   (i,j)-shared           -- K_{h,i,j} reaches both a *left square* and
//                             a *top square* of the square G_{r,s}
//                             containing (i, j); forces a P2-node
//                             collision, so shared mass is bounded by
//                             2^{2r} P2 per square;
//   (i,j)-partially shared -- row and column neighbors exist but not on
//                             both outer sides; charged to proper masses
//                             at rate 2^{r+1};
//   (i,j)-proper           -- no row neighbor or no column neighbor in
//                             K_{h,i,j}; each h is row-proper for at most
//                             one node per row (sum of proper masses is
//                             at most 2n).
//
// Here K_{h,i,j} is the set of P1-nodes in the same row to the left
// (i, j') with i <= j' < j, or same column below (i', j) with
// i < i' <= j, colliding under h with the same hash value. This module
// computes the empirical masses of a concrete (A)LSH family on concrete
// staircase sequences and checks every inequality the proof chains
// together -- a mechanical verification of the lemma on real hash
// functions.

#ifndef IPS_THEORY_LEMMA4_ACCOUNTING_H_
#define IPS_THEORY_LEMMA4_ACCOUNTING_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "lsh/lsh_family.h"
#include "theory/hard_sequences.h"
#include "theory/lemma4.h"

namespace ips {

/// Per-square aggregates of the accounting.
struct SquareMasses {
  GridSquare square;
  double total = 0.0;            // M_{r,s}: sum of node masses
  double proper = 0.0;           // M^p_{r,s}
  double partially_shared = 0.0; // sum of m^ps over the square
  double shared = 0.0;           // sum of m^s over the square
};

/// Full result of the accounting over n = 2^ell - 1 sequences.
struct MassAccounting {
  std::size_t n = 0;
  std::size_t ell = 0;
  /// Empirical P1 (min collision prob over the lower triangle) and P2
  /// (max over the strict upper triangle).
  double p1_hat = 0.0;
  double p2_hat = 0.0;
  /// Node masses, indexed [query i][data j]; zero for P2 nodes.
  Matrix proper_mass;
  Matrix partially_shared_mass;
  Matrix shared_mass;
  std::vector<SquareMasses> squares;
  /// Sum of M^p over all squares; the lemma proves this is <= 2n.
  double total_proper_mass = 0.0;

  /// The proof's inequality chain, checked empirically (with additive
  /// `slack` absorbing sampling error):
  /// (a) total_proper_mass <= 2 n;
  /// (b) per square, shared <= 2^{2r} p2_hat;
  /// (c) per square, partially_shared <= 2^{r+1} proper;
  /// (d) per square, total >= 2^{2r} p1_hat (every node collides w.p.
  ///     >= P1 on the lower triangle).
  bool ProperMassBoundHolds(double slack) const;
  bool SharedMassBoundsHold(double slack) const;
  bool PartiallySharedBoundsHold(double slack) const;
  bool TotalMassLowerBoundsHold(double slack) const;
};

/// Computes the accounting for `family` on staircase `sequences` (whose
/// length must be 2^ell - 1 for some ell >= 1) from `samples` sampled
/// functions, each carrying weight 1/samples.
MassAccounting ComputeLemma4Accounting(const LshFamily& family,
                                       const HardSequences& sequences,
                                       std::size_t samples, Rng* rng);

}  // namespace ips

#endif  // IPS_THEORY_LEMMA4_ACCOUNTING_H_
