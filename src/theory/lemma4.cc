#include "theory/lemma4.h"

#include <cmath>
#include <memory>

#include "util/check.h"

namespace ips {

std::vector<GridSquare> LowerTrianglePartition(std::size_t ell) {
  IPS_CHECK_GE(ell, 1u);
  std::vector<GridSquare> squares;
  for (std::size_t r = 0; r < ell; ++r) {
    const std::size_t count = 1ULL << (ell - r - 1);
    for (std::size_t s = 0; s < count; ++s) {
      GridSquare square;
      square.r = r;
      square.s = s;
      square.side = 1ULL << r;
      square.anchor = (2 * s + 1) * square.side - 1;
      squares.push_back(square);
    }
  }
  return squares;
}

bool SquareContains(const GridSquare& square, std::size_t i, std::size_t j) {
  // Rows run upward from the anchor, columns rightward: G_{r,s} holds
  // nodes with i in (anchor - side, anchor] and j in [anchor,
  // anchor + side).
  const std::size_t lo_row = square.anchor + 1 - square.side;
  return i >= lo_row && i <= square.anchor && j >= square.anchor &&
         j < square.anchor + square.side;
}

double Lemma4GapBound(std::size_t n) {
  IPS_CHECK_GE(n, 2u);
  return 1.0 / (8.0 * std::log2(static_cast<double>(n)));
}

CollisionMatrix::CollisionMatrix(const LshFamily& family,
                                 const HardSequences& sequences,
                                 std::size_t samples, Rng* rng)
    : probabilities_(sequences.queries.rows(), sequences.data.rows()) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(samples, 0u);
  const Matrix& queries = sequences.queries;
  const Matrix& data = sequences.data;
  std::vector<std::uint64_t> query_hashes(queries.rows());
  std::vector<std::uint64_t> data_hashes(data.rows());
  for (std::size_t sample = 0; sample < samples; ++sample) {
    const std::unique_ptr<LshFunction> h = family.Sample(rng);
    for (std::size_t i = 0; i < queries.rows(); ++i) {
      query_hashes[i] = h->HashQuery(queries.Row(i));
    }
    for (std::size_t j = 0; j < data.rows(); ++j) {
      data_hashes[j] = h->HashData(data.Row(j));
    }
    for (std::size_t i = 0; i < queries.rows(); ++i) {
      for (std::size_t j = 0; j < data.rows(); ++j) {
        if (query_hashes[i] == data_hashes[j]) {
          probabilities_.At(i, j) += 1.0;
        }
      }
    }
  }
  for (double& value : probabilities_.data()) {
    value /= static_cast<double>(samples);
  }
}

double CollisionMatrix::EmpiricalP1() const {
  double p1 = 1.0;
  for (std::size_t i = 0; i < probabilities_.rows(); ++i) {
    for (std::size_t j = i; j < probabilities_.cols(); ++j) {
      p1 = std::min(p1, probabilities_.At(i, j));
    }
  }
  return p1;
}

double CollisionMatrix::EmpiricalP2() const {
  double p2 = 0.0;
  for (std::size_t i = 1; i < probabilities_.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      p2 = std::max(p2, probabilities_.At(i, j));
    }
  }
  return p2;
}

}  // namespace ips
