// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Closed-form Theorem 3 upper bounds on the collision gap P1 - P2 of any
// (s, cs, P1, P2)-asymmetric LSH for IPS with data in the unit ball and
// queries in the radius-U ball. Each bound is Lemma 4's 1/(8 log n)
// instantiated with the length n of the corresponding hard sequence
// construction; all three vanish as U -> infinity, which is the
// impossibility of asymmetric LSH for unbounded queries.

#ifndef IPS_THEORY_GAP_BOUNDS_H_
#define IPS_THEORY_GAP_BOUNDS_H_

#include <cstddef>

namespace ips {

/// Length of the case 1 staircase: Theta(d log_{1/c}(U/s)).
std::size_t Case1SequenceLength(std::size_t d, double U, double s, double c);

/// Length of the case 2 staircase: Theta(d sqrt(U/(s(1-c)))).
std::size_t Case2SequenceLength(std::size_t d, double U, double s, double c);

/// Length of the case 3 staircase: 2^floor(sqrt(U/(8s))) - 1.
std::size_t Case3SequenceLength(double U, double s);

/// Theorem 3 case 1 gap bound: O(1 / log(d log_{1/c}(U/s))); valid for
/// signed and unsigned IPS when d >= 1 and s <= min(cU, U/(4 sqrt(d))).
double Case1GapBound(std::size_t d, double U, double s, double c);

/// Theorem 3 case 2 gap bound: O(1 / log(d U / (s (1-c)))); signed IPS
/// only, d >= 2, s <= U/(2d).
double Case2GapBound(std::size_t d, double U, double s, double c);

/// Theorem 3 case 3 gap bound: O(sqrt(s/U)); signed and unsigned,
/// requires d = Omega(U^5 / (c^2 s^5)).
double Case3GapBound(double U, double s);

}  // namespace ips

#endif  // IPS_THEORY_GAP_BOUNDS_H_
