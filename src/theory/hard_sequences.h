// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The three hard data/query sequence constructions of Theorem 3. Each
// produces sequences P = {p_0..p_{n-1}} (unit ball) and Q = {q_0..q_{n-1}}
// (radius-U ball) with the *staircase* property of Lemma 4:
//   q_i^T p_j >= s   when j >= i, and
//   q_i^T p_j <= cs  when j <  i
// (with absolute values for the unsigned variants). Plugged into the
// Lemma 4 grid argument, any (s, cs, P1, P2)-asymmetric LSH must then
// have P1 - P2 <= 1/(8 log n); longer sequences mean stronger bounds.
//
//  * Case 1 (signed & unsigned): geometric sequences on d/2 orthogonal
//    planes, n = Theta(d log_{1/c}(U/s)); requires s <= min(cU, U/(4 sqrt(d))).
//  * Case 2 (signed only): arithmetic staircases on d/2 planes,
//    n = Theta(d sqrt(U / (s(1-c)))); requires s <= U/(2d), d >= 2.
//  * Case 3 (signed & unsigned): binary-tree sums over an incoherent
//    family, n = 2^floor(sqrt(U/(8s))) - 1; the data sequence is shifted
//    by one index so the diagonal pairs also satisfy the >= s promise.

#ifndef IPS_THEORY_HARD_SEQUENCES_H_
#define IPS_THEORY_HARD_SEQUENCES_H_

#include <cstddef>
#include <string>

#include "linalg/matrix.h"
#include "rng/random.h"

namespace ips {

/// A staircase pair of sequences with its parameters.
struct HardSequences {
  Matrix data;     // rows p_j, all with ||p_j|| <= 1
  Matrix queries;  // rows q_i, all with ||q_i|| <= U
  double s = 0.0;
  double c = 0.0;
  double U = 1.0;
  /// True when |q_i^T p_j| also satisfies the staircase property, so the
  /// sequences witness the bound for unsigned IPS too.
  bool unsigned_valid = false;
};

/// Theorem 3 case 1. `d` must be 1 or even; requires
/// s <= min(c U, U / (4 sqrt(d))) and produces a nonempty staircase.
HardSequences MakeCase1Sequences(std::size_t d, double U, double s, double c);

/// Theorem 3 case 2 (signed IPS only). `d` must be even and >= 2;
/// requires s <= U / (2 d).
HardSequences MakeCase2Sequences(std::size_t d, double U, double s, double c);

/// Which incoherent family backs the case 3 construction.
enum class IncoherentKind {
  /// Standard basis vectors: coherence 0, dimension = family size.
  kOrthonormal,
  /// Deterministic Reed-Solomon family (Nelson-Nguyen-Woodruff [38]).
  kReedSolomon,
  /// Normalized Gaussian vectors (Johnson-Lindenstrauss), needs `rng`.
  kRandom,
};

/// Theorem 3 case 3. Sequence length n = 2^L - 1 with
/// L = floor(sqrt(U / (8 s))); requires L >= 1 (i.e. s <= U/8) and the
/// incoherence epsilon = c / (2 L^2).
HardSequences MakeCase3Sequences(double U, double s, double c,
                                 IncoherentKind kind, Rng* rng = nullptr);

/// Result of checking a HardSequences object against its own promise.
struct SequenceCheck {
  bool staircase_ok = false;   // signed staircase property
  bool unsigned_ok = false;    // staircase property on |q^T p|
  bool norms_ok = false;       // data in unit ball, queries in U-ball
  std::size_t violations = 0;  // number of violated (i, j) pairs
  double max_data_norm = 0.0;
  double max_query_norm = 0.0;
};

/// Exhaustive O(n^2) verification of the staircase property and norms.
SequenceCheck VerifyHardSequences(const HardSequences& sequences);

/// Keeps only the first `length` entries of both sequences. Any prefix
/// of a staircase is a staircase, so the promise is preserved. Useful
/// for the Lemma 4 machinery, which wants length exactly 2^ell - 1.
HardSequences TrimSequences(const HardSequences& sequences,
                            std::size_t length);

}  // namespace ips

#endif  // IPS_THEORY_HARD_SEQUENCES_H_
