#include "theory/hard_sequences.h"

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "codes/incoherent.h"
#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {
namespace {

constexpr double kTolerance = 1e-9;

}  // namespace

HardSequences MakeCase1Sequences(std::size_t d, double U, double s,
                                 double c) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  IPS_CHECK_GE(U, 1.0);
  IPS_CHECK(d == 1 || d % 2 == 0) << "case 1 needs d = 1 or even d";
  HardSequences out;
  out.s = s;
  out.c = c;
  out.U = U;
  out.unsigned_valid = true;  // all staircase inner products non-negative

  const double log_inv_c = std::log(1.0 / c);
  if (d == 1) {
    IPS_CHECK_LE(s, U);
    // p_j = s/(U c^j) needs c^j >= s/U.
    const std::size_t m = static_cast<std::size_t>(
                              std::floor(std::log(U / s) / log_inv_c)) +
                          1;
    Matrix data(m, 1);
    Matrix queries(m, 1);
    for (std::size_t i = 0; i < m; ++i) {
      queries.At(i, 0) = U * std::pow(c, static_cast<double>(i));
      data.At(i, 0) = s / (U * std::pow(c, static_cast<double>(i)));
    }
    out.data = std::move(data);
    out.queries = std::move(queries);
    return out;
  }

  IPS_CHECK_LE(s, c * U) << "case 1 needs s <= cU";
  IPS_CHECK_LE(s, U / (4.0 * std::sqrt(static_cast<double>(d))))
      << "case 1 needs s <= U/(4 sqrt(d))";
  const std::size_t planes = d / 2;
  // Drop the first i0 indices so U^2 c^(2 i0) <= U^2 / e (the proof's
  // removal of the queries that would land in the 2U ball).
  const std::size_t i0 =
      static_cast<std::size_t>(std::ceil(0.5 / log_inv_c));
  // p_(j,k) has coordinates s/(U c^j) and 1/2; unit norm needs
  // (s c^-j / U)^2 <= 3/4.
  const double j_limit =
      std::log(std::sqrt(3.0) * U / (2.0 * s)) / log_inv_c;
  IPS_CHECK_GE(j_limit, static_cast<double>(i0))
      << "case 1 parameters leave an empty staircase";
  const std::size_t j_max = static_cast<std::size_t>(std::floor(j_limit));
  const std::size_t m = j_max - i0 + 1;
  const std::size_t n = m * planes;

  Matrix data(n, d);
  Matrix queries(n, d);
  for (std::size_t k = 0; k < planes; ++k) {
    for (std::size_t step = 0; step < m; ++step) {
      const double exponent = static_cast<double>(i0 + step);
      const std::size_t row = k * m + step;
      // Query q_(i,k): U c^i on axis 2k, 2s on the odd axes at and after
      // the block.
      queries.At(row, 2 * k) = U * std::pow(c, exponent);
      for (std::size_t t = k; t < planes; ++t) {
        queries.At(row, 2 * t + 1) = 2.0 * s;
      }
      // Data p_(j,k): s/(U c^j) on axis 2k, 1/2 on axis 2k-1 (k > 0).
      data.At(row, 2 * k) = s / (U * std::pow(c, exponent));
      if (k > 0) data.At(row, 2 * k - 1) = 0.5;
    }
  }
  out.data = std::move(data);
  out.queries = std::move(queries);
  return out;
}

HardSequences MakeCase2Sequences(std::size_t d, double U, double s,
                                 double c) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  IPS_CHECK_GE(U, 1.0);
  IPS_CHECK(d >= 2 && d % 2 == 0) << "case 2 needs even d >= 2";
  IPS_CHECK_LE(s, U / (2.0 * static_cast<double>(d)))
      << "case 2 needs s <= U/(2d)";
  HardSequences out;
  out.s = s;
  out.c = c;
  out.U = U;
  out.unsigned_valid = false;  // below-diagonal products can be very negative

  const std::size_t planes = d / 2;
  const double one_minus_c = 1.0 - c;
  // Unit data norm: s/U + j^2 s(1-c)/U <= 1.
  const double j_limit =
      std::sqrt((1.0 - s / U) * U / (s * one_minus_c));
  // Query norm (worst block k = 0):
  // sU (1-(1-c)i)^2 + sU(1-c) + sU(planes-1) <= U^2.
  const double remainder =
      U / s - one_minus_c - static_cast<double>(planes - 1);
  IPS_CHECK_GE(remainder, 1.0) << "case 2 parameters out of range";
  const double i_limit = (1.0 + std::sqrt(remainder)) / one_minus_c;
  const std::size_t m =
      static_cast<std::size_t>(std::floor(std::min(j_limit, i_limit))) + 1;
  IPS_CHECK_GE(m, 1u);
  const std::size_t n = m * planes;

  Matrix data(n, d);
  Matrix queries(n, d);
  const double sqrt_su = std::sqrt(s * U);
  for (std::size_t k = 0; k < planes; ++k) {
    for (std::size_t step = 0; step < m; ++step) {
      const std::size_t row = k * m + step;
      const double index = static_cast<double>(step);
      queries.At(row, 2 * k) = sqrt_su * (1.0 - one_minus_c * index);
      queries.At(row, 2 * k + 1) = std::sqrt(s * U * one_minus_c);
      for (std::size_t t = k + 1; t < planes; ++t) {
        queries.At(row, 2 * t) = sqrt_su;
      }
      data.At(row, 2 * k) = std::sqrt(s / U);
      data.At(row, 2 * k + 1) = index * std::sqrt(s * one_minus_c / U);
    }
  }
  out.data = std::move(data);
  out.queries = std::move(queries);
  return out;
}

HardSequences MakeCase3Sequences(double U, double s, double c,
                                 IncoherentKind kind, Rng* rng) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  IPS_CHECK_GE(U, 1.0);
  IPS_CHECK_LE(s, U / 8.0) << "case 3 needs s <= U/8";
  const std::size_t levels =
      static_cast<std::size_t>(std::floor(std::sqrt(U / (8.0 * s))));
  IPS_CHECK_GE(levels, 1u);
  const std::size_t n = (1ULL << levels) - 1;
  const double epsilon =
      c / (2.0 * static_cast<double>(levels) * static_cast<double>(levels));
  // Tree nodes: prefixes of length 1..levels; prefix (t, v) has index
  // (2^t - 2) + v.
  const std::size_t num_nodes = (1ULL << (levels + 1)) - 2;

  // A callback adding scale * z_node into an accumulator; the orthonormal
  // family is handled implicitly (z_node = e_node) so that large level
  // counts never materialize a dense identity matrix.
  std::size_t dim = 0;
  std::function<void(std::size_t, double, std::vector<double>*)> add_node;
  Matrix family;  // dense node vectors for the non-trivial kinds
  switch (kind) {
    case IncoherentKind::kOrthonormal: {
      dim = num_nodes;
      add_node = [](std::size_t node, double scale,
                    std::vector<double>* out) { (*out)[node] += scale; };
      break;
    }
    case IncoherentKind::kReedSolomon: {
      const RsIncoherentFamily rs(num_nodes, epsilon);
      for (std::size_t i = 0; i < num_nodes; ++i) {
        family.AppendRow(rs.Vector(i));
      }
      dim = family.cols();
      break;
    }
    case IncoherentKind::kRandom: {
      IPS_CHECK(rng != nullptr) << "kRandom needs an Rng";
      const RandomIncoherentFamily random(num_nodes, epsilon, rng);
      for (std::size_t i = 0; i < num_nodes; ++i) {
        std::span<const double> row = random.Vector(i);
        family.AppendRow(row);
      }
      dim = family.cols();
      break;
    }
  }
  if (!add_node) {
    add_node = [&family](std::size_t node, double scale,
                         std::vector<double>* out) {
      const std::span<const double> z = family.Row(node);
      for (std::size_t t = 0; t < z.size(); ++t) (*out)[t] += scale * z[t];
    };
  }

  const auto node_index = [&](std::size_t prefix_len, std::size_t value) {
    return ((1ULL << prefix_len) - 2) + value;
  };
  // p(r): sum of z over r's own 1-bit prefixes, scaled by sqrt(2s/U).
  const auto build_data = [&](std::size_t r) {
    std::vector<double> v(dim, 0.0);
    const double scale = std::sqrt(2.0 * s / U);
    for (std::size_t level = 0; level < levels; ++level) {
      const std::size_t prefix = r >> (levels - 1 - level);
      if ((prefix & 1ULL) == 0) continue;  // bit at this level is 0
      add_node(node_index(level + 1, prefix), scale, &v);
    }
    return v;
  };
  // q(r): sum of z over the flipped-to-1 siblings of r's 0 bits, scaled
  // by sqrt(2sU).
  const auto build_query = [&](std::size_t r) {
    std::vector<double> v(dim, 0.0);
    const double scale = std::sqrt(2.0 * s * U);
    for (std::size_t level = 0; level < levels; ++level) {
      const std::size_t prefix = r >> (levels - 1 - level);
      if ((prefix & 1ULL) == 1) continue;  // bit at this level is 1
      add_node(node_index(level + 1, prefix | 1ULL), scale, &v);
    }
    return v;
  };

  HardSequences out;
  out.s = s;
  out.c = c;
  out.U = U;
  out.unsigned_valid = true;
  for (std::size_t i = 0; i < n; ++i) {
    out.queries.AppendRow(build_query(i));
    // Shift the data index by one: the staircase needs the diagonal pair
    // (i, i) to score >= s, which requires a strict bit difference.
    out.data.AppendRow(build_data(i + 1));
  }
  return out;
}

HardSequences TrimSequences(const HardSequences& sequences,
                            std::size_t length) {
  IPS_CHECK_LE(length, sequences.data.rows());
  HardSequences out;
  out.s = sequences.s;
  out.c = sequences.c;
  out.U = sequences.U;
  out.unsigned_valid = sequences.unsigned_valid;
  for (std::size_t i = 0; i < length; ++i) {
    out.data.AppendRow(sequences.data.Row(i));
    out.queries.AppendRow(sequences.queries.Row(i));
  }
  return out;
}

SequenceCheck VerifyHardSequences(const HardSequences& sequences) {
  SequenceCheck check;
  const Matrix& p = sequences.data;
  const Matrix& q = sequences.queries;
  IPS_CHECK_EQ(p.rows(), q.rows());
  const double cs = sequences.c * sequences.s;

  check.staircase_ok = true;
  check.unsigned_ok = true;
  for (std::size_t i = 0; i < q.rows(); ++i) {
    for (std::size_t j = 0; j < p.rows(); ++j) {
      const double value = kernels::Dot(q.Row(i), p.Row(j));
      const bool lower = j >= i;
      const bool signed_ok = lower ? value >= sequences.s - kTolerance
                                   : value <= cs + kTolerance;
      const bool unsigned_ok =
          lower ? std::abs(value) >= sequences.s - kTolerance
                : std::abs(value) <= cs + kTolerance;
      if (!signed_ok) {
        check.staircase_ok = false;
        ++check.violations;
      }
      if (!unsigned_ok) check.unsigned_ok = false;
    }
  }
  for (std::size_t j = 0; j < p.rows(); ++j) {
    check.max_data_norm = std::max(check.max_data_norm, kernels::Norm(p.Row(j)));
  }
  for (std::size_t i = 0; i < q.rows(); ++i) {
    check.max_query_norm = std::max(check.max_query_norm, kernels::Norm(q.Row(i)));
  }
  check.norms_ok = check.max_data_norm <= 1.0 + kTolerance &&
                   check.max_query_norm <= sequences.U + kTolerance;
  return check;
}

}  // namespace ips
