#include "tree/mips_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace ips {

MipsBallTree::MipsBallTree(const Matrix& data, std::size_t leaf_size,
                           Rng* rng)
    : data_(&data), point_order_(data.rows()) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(data.rows(), 0u);
  IPS_CHECK_GE(leaf_size, 1u);
  for (std::size_t i = 0; i < data.rows(); ++i) point_order_[i] = i;
  root_ = BuildNode(0, data.rows(), leaf_size, rng);
}

StatusOr<MipsBallTree> MipsBallTree::Restore(
    const Matrix& data, std::vector<Node> nodes,
    std::vector<std::size_t> point_order, int root) {
  const std::size_t n = data.rows();
  if (n == 0) {
    return Status::InvalidArgument("tree restore needs a non-empty dataset");
  }
  if (point_order.size() != n) {
    return Status::DataLoss("tree artifact orders " +
                            std::to_string(point_order.size()) +
                            " points but the dataset has " +
                            std::to_string(n));
  }
  std::vector<bool> seen(n, false);
  for (std::size_t p : point_order) {
    if (p >= n || seen[p]) {
      return Status::DataLoss(
          "tree artifact point order is not a permutation of the dataset");
    }
    seen[p] = true;
  }
  if (nodes.empty() || root < 0 ||
      static_cast<std::size_t>(root) >= nodes.size()) {
    return Status::DataLoss("tree artifact root " + std::to_string(root) +
                            " is outside its " +
                            std::to_string(nodes.size()) + " nodes");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& node = nodes[i];
    if (node.center.size() != data.cols()) {
      return Status::DataLoss("tree artifact node " + std::to_string(i) +
                              " has a " + std::to_string(node.center.size()) +
                              "-dimensional center in a " +
                              std::to_string(data.cols()) +
                              "-dimensional dataset");
    }
    if (node.begin > node.end || node.end > n ||
        !(node.radius >= 0.0) || !std::isfinite(node.radius)) {
      return Status::DataLoss("tree artifact node " + std::to_string(i) +
                              " has an invalid range or radius");
    }
    // Children were always allocated after their parent (BuildNode
    // pushes the parent first), so forward-only links also certify the
    // restored graph is acyclic.
    if (!node.IsLeaf()) {
      const bool left_ok =
          node.left > static_cast<int>(i) &&
          static_cast<std::size_t>(node.left) < nodes.size();
      const bool right_ok =
          node.right > static_cast<int>(i) &&
          static_cast<std::size_t>(node.right) < nodes.size();
      if (!left_ok || !right_ok) {
        return Status::DataLoss("tree artifact node " + std::to_string(i) +
                                " has invalid child links");
      }
    }
  }
  MipsBallTree tree;
  tree.data_ = &data;
  tree.nodes_ = std::move(nodes);
  tree.point_order_ = std::move(point_order);
  tree.root_ = root;
  return tree;
}

int MipsBallTree::BuildNode(std::size_t begin, std::size_t end,
                            std::size_t leaf_size, Rng* rng) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_[index];
    node.begin = begin;
    node.end = end;
    // Center = mean of the points; radius = max distance to the center.
    node.center.assign(data_->cols(), 0.0);
    for (std::size_t t = begin; t < end; ++t) {
      const std::span<const double> row = data_->Row(point_order_[t]);
      for (std::size_t c = 0; c < row.size(); ++c) node.center[c] += row[c];
    }
    const double inv = 1.0 / static_cast<double>(end - begin);
    for (double& c : node.center) c *= inv;
    for (std::size_t t = begin; t < end; ++t) {
      node.radius = std::max(
          node.radius, std::sqrt(kernels::SquaredDistance(
                           data_->Row(point_order_[t]), node.center)));
    }
  }
  const std::size_t count = end - begin;
  if (count <= leaf_size) return index;

  // Two-pivot split: a random point, the farthest point A from it, and
  // the farthest point B from A; partition by nearer pivot.
  const std::size_t seed_pos =
      begin + static_cast<std::size_t>(rng->NextBounded(count));
  auto farthest_from = [&](std::size_t from_index) {
    std::size_t best = begin;
    double best_dist = -1.0;
    for (std::size_t t = begin; t < end; ++t) {
      const double dist = kernels::SquaredDistance(data_->Row(point_order_[t]),
                                          data_->Row(from_index));
      if (dist > best_dist) {
        best_dist = dist;
        best = t;
      }
    }
    return best;
  };
  const std::size_t a_pos = farthest_from(point_order_[seed_pos]);
  const std::size_t b_pos = farthest_from(point_order_[a_pos]);
  const std::size_t a_index = point_order_[a_pos];
  const std::size_t b_index = point_order_[b_pos];

  auto closer_to_a = [&](std::size_t point) {
    return kernels::SquaredDistance(data_->Row(point), data_->Row(a_index)) <=
           kernels::SquaredDistance(data_->Row(point), data_->Row(b_index));
  };
  auto middle = std::partition(point_order_.begin() + begin,
                               point_order_.begin() + end, closer_to_a);
  std::size_t mid = static_cast<std::size_t>(
      std::distance(point_order_.begin(), middle));
  // Degenerate split (duplicates): fall back to a halving split.
  if (mid == begin || mid == end) mid = begin + count / 2;

  const int left = BuildNode(begin, mid, leaf_size, rng);
  const int right = BuildNode(mid, end, leaf_size, rng);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

double MipsBallTree::SignedBound(const Node& node, std::span<const double> q,
                                 double q_norm) const {
  return kernels::Dot(node.center, q) + q_norm * node.radius;
}

double MipsBallTree::UnsignedBound(const Node& node,
                                   std::span<const double> q,
                                   double q_norm) const {
  return std::abs(kernels::Dot(node.center, q)) + q_norm * node.radius;
}

void MipsBallTree::SearchSigned(int node_index, std::span<const double> q,
                                double q_norm, MipsResult* best) const {
  const Node& node = nodes_[node_index];
  if (SignedBound(node, q, q_norm) <= best->value) return;
  if (node.IsLeaf()) {
    for (std::size_t t = node.begin; t < node.end; ++t) {
      const std::size_t point = point_order_[t];
      const double value = kernels::Dot(data_->Row(point), q);
      ++best->evaluated;
      if (value > best->value) {
        best->value = value;
        best->index = point;
      }
    }
    return;
  }
  // Visit the more promising child first for better pruning.
  const double left_bound = SignedBound(nodes_[node.left], q, q_norm);
  const double right_bound = SignedBound(nodes_[node.right], q, q_norm);
  if (left_bound >= right_bound) {
    SearchSigned(node.left, q, q_norm, best);
    SearchSigned(node.right, q, q_norm, best);
  } else {
    SearchSigned(node.right, q, q_norm, best);
    SearchSigned(node.left, q, q_norm, best);
  }
}

void MipsBallTree::SearchUnsigned(int node_index, std::span<const double> q,
                                  double q_norm, MipsResult* best) const {
  const Node& node = nodes_[node_index];
  if (UnsignedBound(node, q, q_norm) <= best->value) return;
  if (node.IsLeaf()) {
    for (std::size_t t = node.begin; t < node.end; ++t) {
      const std::size_t point = point_order_[t];
      const double value = std::abs(kernels::Dot(data_->Row(point), q));
      ++best->evaluated;
      if (value > best->value) {
        best->value = value;
        best->index = point;
      }
    }
    return;
  }
  const double left_bound = UnsignedBound(nodes_[node.left], q, q_norm);
  const double right_bound = UnsignedBound(nodes_[node.right], q, q_norm);
  if (left_bound >= right_bound) {
    SearchUnsigned(node.left, q, q_norm, best);
    SearchUnsigned(node.right, q, q_norm, best);
  } else {
    SearchUnsigned(node.right, q, q_norm, best);
    SearchUnsigned(node.left, q, q_norm, best);
  }
}

std::vector<std::pair<std::size_t, double>> MipsBallTree::QueryTopK(
    std::span<const double> q, std::size_t k, std::size_t* evaluated) const {
  TreeQueryInfo info;
  auto result = QueryTopK(q, k, nullptr, &info);
  if (evaluated != nullptr) *evaluated = info.points_scored;
  return result;
}

std::vector<std::pair<std::size_t, double>> MipsBallTree::QueryTopK(
    std::span<const double> q, std::size_t k, Trace* trace,
    TreeQueryInfo* info) const {
  IPS_CHECK_EQ(q.size(), data_->cols());
  IPS_CHECK_GE(k, 1u);
  static Counter* const queries =
      MetricsRegistry::Global().GetCounter("tree.queries");
  static Counter* const nodes_visited =
      MetricsRegistry::Global().GetCounter("tree.nodes_visited");
  static Counter* const nodes_pruned =
      MetricsRegistry::Global().GetCounter("tree.nodes_pruned");
  static Counter* const points_scored =
      MetricsRegistry::Global().GetCounter("tree.points_scored");

  WallTimer total_timer;
  double leaf_seconds = 0.0;
  TreeQueryInfo local;
  const double q_norm = kernels::Norm(q);
  std::size_t leaf_points_scored = 0;
  // Scratch reused across every leaf this descent visits.
  std::vector<double> leaf_scores;
  // Min-heap on (score, inverted index): heap.front() is the current
  // k-th best, where equal scores rank the *larger* index as worse so
  // ties break toward the smaller data index deterministically.
  std::vector<std::pair<double, std::size_t>> heap;
  auto worse = [](const std::pair<double, std::size_t>& a,
                  const std::pair<double, std::size_t>& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  auto heap_greater = [worse](const std::pair<double, std::size_t>& a,
                              const std::pair<double, std::size_t>& b) {
    return worse(b, a);
  };
  // Iterative DFS with best-first child ordering.
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const int node_index = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_index];
    ++local.nodes_visited;
    if (heap.size() == k && SignedBound(node, q, q_norm) < heap.front().first) {
      ++local.nodes_pruned;
      continue;
    }
    if (node.IsLeaf()) {
      // One clock read per leaf visited, amortized over the leaf's
      // points; the descent/leaf_scan split is recorded only when
      // tracing.
      WallTimer leaf_timer;
      // Score the whole leaf block through the dispatched gather
      // kernel, then feed the heap from the scratch scores.
      const std::size_t count = node.end - node.begin;
      leaf_scores.resize(count);
      kernels::GatherScores(
          *data_,
          std::span<const std::size_t>(point_order_).subspan(node.begin,
                                                             count),
          q, leaf_scores);
      for (std::size_t t = 0; t < count; ++t) {
        const std::size_t point = point_order_[node.begin + t];
        const double value = leaf_scores[t];
        ++leaf_points_scored;
        if (heap.size() < k) {
          heap.emplace_back(value, point);
          std::push_heap(heap.begin(), heap.end(), heap_greater);
        } else if (worse(heap.front(), {value, point})) {
          std::pop_heap(heap.begin(), heap.end(), heap_greater);
          heap.back() = {value, point};
          std::push_heap(heap.begin(), heap.end(), heap_greater);
        }
      }
      if (trace != nullptr) leaf_seconds += leaf_timer.Seconds();
      continue;
    }
    // Push the less promising child first so the better one pops first.
    const double left_bound = SignedBound(nodes_[node.left], q, q_norm);
    const double right_bound = SignedBound(nodes_[node.right], q, q_norm);
    if (left_bound >= right_bound) {
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  std::sort(heap.begin(), heap.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<std::pair<std::size_t, double>> result;
  result.reserve(heap.size());
  for (const auto& [value, index] : heap) result.emplace_back(index, value);

  local.points_scored = leaf_points_scored;
  if (trace != nullptr) {
    const double total = total_timer.Seconds();
    const std::size_t descent = trace->RecordSpan(
        "descent", std::max(0.0, total - leaf_seconds));
    trace->AddCount(descent, "nodes_visited", local.nodes_visited);
    trace->AddCount(descent, "nodes_pruned", local.nodes_pruned);
    const std::size_t leaf_scan = trace->RecordSpan("leaf_scan", leaf_seconds);
    trace->AddCount(leaf_scan, "points_scored", local.points_scored);
  }
  queries->Increment();
  nodes_visited->Add(local.nodes_visited);
  nodes_pruned->Add(local.nodes_pruned);
  points_scored->Add(local.points_scored);
  if (info != nullptr) *info = local;
  return result;
}

MipsResult MipsBallTree::QueryMax(std::span<const double> q) const {
  IPS_CHECK_EQ(q.size(), data_->cols());
  MipsResult best;
  best.value = -std::numeric_limits<double>::infinity();
  SearchSigned(root_, q, kernels::Norm(q), &best);
  return best;
}

MipsResult MipsBallTree::QueryMaxAbs(std::span<const double> q) const {
  IPS_CHECK_EQ(q.size(), data_->cols());
  MipsResult best;
  best.value = -1.0;
  SearchUnsigned(root_, q, kernels::Norm(q), &best);
  return best;
}

}  // namespace ips
