// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Exact maximum-inner-product search by branch-and-bound on a ball tree
// (Ram-Gray [43], Koenigstein et al. [30]): every node stores the center
// and radius of the ball enclosing its points, and for a query q the
// best inner product inside the ball is at most
//   q^T center + ||q|| * radius
// (and at least q^T center - ||q|| * radius for the signed minimum, which
// gives |q^T p| <= |q^T center| + ||q|| * radius for unsigned search).
// Subtrees whose bound cannot beat the current best are pruned. This is
// the exact tree baseline the paper's related-work section contrasts
// with LSH approaches -- correct in any dimension, fast only when the
// curse of dimensionality spares it.

#ifndef IPS_TREE_MIPS_TREE_H_
#define IPS_TREE_MIPS_TREE_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "obs/trace.h"
#include "rng/random.h"
#include "util/status.h"

namespace ips {

/// Result of an exact MIPS query.
struct MipsResult {
  std::size_t index = 0;
  double value = 0.0;
  /// Number of leaf points whose inner product was evaluated (pruning
  /// diagnostic; equals n when nothing could be pruned).
  std::size_t evaluated = 0;
};

/// Per-query accounting of one branch-and-bound descent, for callers
/// that fold the numbers into a core::QueryStats.
struct TreeQueryInfo {
  /// Nodes whose bound was evaluated.
  std::size_t nodes_visited = 0;
  /// Visited nodes whose subtree the bound pruned away.
  std::size_t nodes_pruned = 0;
  /// Leaf points whose exact inner product was computed.
  std::size_t points_scored = 0;
};

/// Ball tree over the rows of a data matrix with MIP branch-and-bound.
class MipsBallTree {
 public:
  /// One tree node: the ball (center, radius) enclosing the points of
  /// point_order[begin, end), and children indexes into nodes().
  /// Public so the storage layer can persist the built tree verbatim
  /// (snapshots restore through Restore, which re-validates everything).
  struct Node {
    std::vector<double> center;
    double radius = 0.0;
    std::size_t begin = 0;  // range into point_order_
    std::size_t end = 0;
    int left = -1;
    int right = -1;
    bool IsLeaf() const { return left < 0; }
  };

  /// Builds the tree; `data` must outlive it. Leaves hold at most
  /// `leaf_size` points.
  MipsBallTree(const Matrix& data, std::size_t leaf_size, Rng* rng);

  /// Reassembles a tree from persisted build artifacts without
  /// rebuilding. Every structural invariant is re-validated (ranges,
  /// child links, center dimensions, point_order a permutation), so a
  /// corrupted-but-CRC-valid artifact yields a Status, not undefined
  /// search behavior. `data` must outlive the tree.
  [[nodiscard]] static StatusOr<MipsBallTree> Restore(
      const Matrix& data, std::vector<Node> nodes,
      std::vector<std::size_t> point_order, int root);

  std::size_t num_points() const { return data_->rows(); }

  /// argmax_p q^T p (signed maximum), exact.
  MipsResult QueryMax(std::span<const double> q) const;

  /// argmax_p |q^T p| (unsigned maximum), exact.
  MipsResult QueryMaxAbs(std::span<const double> q) const;

  /// Exact top-k by signed inner product, descending; branch-and-bound
  /// against the current k-th best. Ties break toward the smaller data
  /// index, so the returned ordering is deterministic. Returns min(k, n)
  /// entries. When `evaluated` is non-null it receives the number of
  /// leaf points scored (pruning diagnostic, used by the serve planner).
  std::vector<std::pair<std::size_t, double>> QueryTopK(
      std::span<const double> q, std::size_t k,
      std::size_t* evaluated = nullptr) const;

  /// Instrumented flavor: when `trace` is non-null, records "descent"
  /// and "leaf_scan" child spans (leaf-scan time is accumulated across
  /// all leaves visited, descent is the remainder) under the trace's
  /// open span; when `info` is non-null, fills the per-query
  /// accounting. Every call bumps the "tree.*" registry counters.
  std::vector<std::pair<std::size_t, double>> QueryTopK(
      std::span<const double> q, std::size_t k, Trace* trace,
      TreeQueryInfo* info) const;

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Build artifacts, exposed for snapshotting (immutable once built).
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::size_t>& point_order() const { return point_order_; }
  int root() const { return root_; }

 private:
  MipsBallTree() = default;  // Restore fills the members.

  int BuildNode(std::size_t begin, std::size_t end, std::size_t leaf_size,
                Rng* rng);

  /// Upper bound on q^T p over the node's ball.
  double SignedBound(const Node& node, std::span<const double> q,
                     double q_norm) const;

  /// Upper bound on |q^T p| over the node's ball.
  double UnsignedBound(const Node& node, std::span<const double> q,
                       double q_norm) const;

  void SearchSigned(int node_index, std::span<const double> q, double q_norm,
                    MipsResult* best) const;
  void SearchUnsigned(int node_index, std::span<const double> q,
                      double q_norm, MipsResult* best) const;

  const Matrix* data_;
  std::vector<Node> nodes_;
  std::vector<std::size_t> point_order_;
  int root_ = -1;
};

}  // namespace ips

#endif  // IPS_TREE_MIPS_TREE_H_
