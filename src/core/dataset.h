// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Synthetic dataset generators for the example workloads and benchmarks:
// unit-ball Gaussian clouds, latent-factor recommender vectors (the
// Teflioudi et al. [50] motivation), binary set data, and planted
// high-inner-product instances with known ground truth.

#ifndef IPS_CORE_DATASET_H_
#define IPS_CORE_DATASET_H_

#include <cstddef>
#include <utility>

#include "linalg/matrix.h"
#include "rng/random.h"

namespace ips {

/// n Gaussian points scaled to lie in the unit ball, with norms spread
/// uniformly in [min_norm, 1].
Matrix MakeUnitBallGaussian(std::size_t n, std::size_t dim, double min_norm,
                            Rng* rng);

/// Latent-factor vectors: Gaussian directions with Zipf-like norms
/// norm_i proportional to (i+1)^(-skew), rescaled into the unit ball.
/// Models item popularity skew in recommender factor models.
Matrix MakeLatentFactorVectors(std::size_t n, std::size_t dim, double skew,
                               Rng* rng);

/// Binary 0/1 matrix where each row has exactly `weight` ones at uniform
/// random positions (set-valued data).
Matrix MakeBinarySets(std::size_t n, std::size_t dim, std::size_t weight,
                      Rng* rng);

/// A planted instance: data and queries are unit-ball Gaussian noise
/// except that for each query i, data point `plants[i]` is rigged so the
/// pair's inner product is >= target (queries get radius query_radius).
struct PlantedInstance {
  Matrix data;
  Matrix queries;
  std::vector<std::size_t> plants;  // plants[i] = planted data index
  double target = 0.0;
};

/// Builds a planted instance where every query has exactly one strong
/// match with inner product approximately `target` (<= query_radius) and
/// all other pairs are near-orthogonal noise.
PlantedInstance MakePlantedInstance(std::size_t num_data,
                                    std::size_t num_queries, std::size_t dim,
                                    double target, double query_radius,
                                    Rng* rng);

}  // namespace ips

#endif  // IPS_CORE_DATASET_H_
