// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Point-set I/O: load and save dense matrices as CSV (one row per
// point), so external datasets can be joined and experiment outputs
// plotted. Recoverable failures (missing file, ragged rows, parse
// errors) are reported through Status rather than aborting.

#ifndef IPS_CORE_IO_H_
#define IPS_CORE_IO_H_

#include <string>

#include "linalg/matrix.h"
#include "util/status.h"

namespace ips {

/// Parses a dense matrix from a CSV file: one row per line,
/// comma-separated decimal values, optionally ending in a newline.
/// Blank lines and lines starting with '#' are skipped. All rows must
/// have the same number of columns.
StatusOr<Matrix> LoadMatrixCsv(const std::string& path);

/// Writes `matrix` as CSV to `path` (full double precision, '.' decimal
/// separator), overwriting any existing file.
Status SaveMatrixCsv(const std::string& path, const Matrix& matrix);

/// Parses a matrix from an in-memory CSV string (same format as
/// LoadMatrixCsv; used by tests and network-fed pipelines).
StatusOr<Matrix> ParseMatrixCsv(const std::string& text);

}  // namespace ips

#endif  // IPS_CORE_IO_H_
