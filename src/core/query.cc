#include "core/query.h"

#include <cmath>

namespace ips {

std::string_view QueryAlgoName(QueryAlgo algo) {
  switch (algo) {
    case QueryAlgo::kBruteForce:
      return "brute";
    case QueryAlgo::kBallTree:
      return "tree";
    case QueryAlgo::kLsh:
      return "lsh";
    case QueryAlgo::kSketch:
      return "sketch";
  }
  return "unknown";
}

std::string_view QueryPrecisionName(QueryPrecision precision) {
  switch (precision) {
    case QueryPrecision::kAuto:
      return "auto";
    case QueryPrecision::kExact:
      return "exact";
    case QueryPrecision::kQuantizedRerank:
      return "quant";
    case QueryPrecision::kSketchFilter:
      return "filter";
  }
  return "unknown";
}

void QueryStats::Merge(const QueryStats& other) {
  candidates += other.candidates;
  dot_products += other.dot_products;
  candidates_pruned += other.candidates_pruned;
  rerank_exact_dots += other.rerank_exact_dots;
  exec_seconds += other.exec_seconds;
  queue_seconds += other.queue_seconds;
  deadline_met = deadline_met && other.deadline_met;
  batch_size += other.batch_size;
  shards_total += other.shards_total;
  shards_ok += other.shards_ok;
  shards_failed += other.shards_failed;
  shards_hedged += other.shards_hedged;
  for (const auto& [key, value] : other.metrics.items()) {
    metrics.Add(key, value);
  }
}

Status ValidateQueryOptions(const QueryOptions& options) {
  if (options.k < 1) {
    return Status::InvalidArgument("top-k query needs k >= 1");
  }
  if (!std::isfinite(options.recall_target) || options.recall_target <= 0.0 ||
      options.recall_target > 1.0) {
    return Status::InvalidArgument(
        "recall target must lie in (0, 1], got " +
        std::to_string(options.recall_target));
  }
  switch (options.precision) {
    case QueryPrecision::kAuto:
    case QueryPrecision::kExact:
    case QueryPrecision::kQuantizedRerank:
    case QueryPrecision::kSketchFilter:
      break;
    default:
      return Status::InvalidArgument(
          "unknown precision value " +
          std::to_string(static_cast<int>(options.precision)));
  }
  return Status::Ok();
}

}  // namespace ips
