#include "core/norm_range_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace ips {

NormRangeIndex::NormRangeIndex(const Matrix& data,
                               const NormRangeParams& params, Rng* rng)
    : data_(&data), params_(params) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(data.rows(), 0u);
  IPS_CHECK_GE(params.bucket_size, 1u);
  // Sort indices by norm, descending.
  std::vector<std::uint32_t> order(data.rows());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> norms(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) norms[i] = kernels::Norm(data.Row(i));
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return norms[a] > norms[b];
  });

  for (std::size_t begin = 0; begin < order.size();
       begin += params.bucket_size) {
    const std::size_t end =
        std::min(begin + params.bucket_size, order.size());
    Bucket bucket;
    bucket.members.assign(order.begin() + begin, order.begin() + end);
    bucket.max_norm = norms[bucket.members.front()];
    for (std::uint32_t member : bucket.members) {
      bucket.directions.AppendRow(kernels::Normalized(data.Row(member)));
    }
    bucket.family = std::make_unique<SimHashFamily>(data.cols());
    bucket.tables = std::make_unique<LshTables>(
        *bucket.family, bucket.directions, params.lsh_params, rng);
    buckets_.push_back(std::move(bucket));
  }
}

std::optional<SearchMatch> NormRangeIndex::Search(std::span<const double> q,
                                                  const JoinSpec& spec) const {
  IPS_CHECK(spec.is_signed) << "NormRangeIndex answers signed MIPS";
  const double query_norm = kernels::Norm(q);
  if (query_norm == 0.0) return std::nullopt;
  const std::vector<double> direction = kernels::Normalized(q);

  SearchMatch best;
  best.value = -std::numeric_limits<double>::infinity();
  for (const Bucket& bucket : buckets_) {
    const double bucket_bound = bucket.max_norm * query_norm;
    // Prune: nothing in this (or any later) bucket can beat both the
    // current best and the cs threshold.
    if (bucket_bound <= std::max(best.value, spec.cs())) {
      buckets_pruned_ += 1;
      break;
    }
    const double local_cosine =
        std::max(best.value, spec.cs()) / bucket_bound;
    auto consider = [&](std::size_t position) {
      const std::uint32_t member = bucket.members[position];
      const double value = kernels::Dot(data_->Row(member), q);
      ++evaluated_;
      if (value > best.value) {
        best.value = value;
        best.index = member;
      }
    };
    if (local_cosine >= params_.lsh_cosine_threshold) {
      // Selective regime: probe the bucket's cosine tables.
      for (std::size_t position : bucket.tables->Query(direction)) {
        consider(position);
      }
    } else {
      // Low local threshold: scanning is cheaper than high-recall LSH.
      for (std::size_t position = 0; position < bucket.members.size();
           ++position) {
        consider(position);
      }
    }
  }
  if (best.value >= spec.cs()) return best;
  return std::nullopt;
}

StatusOr<std::vector<SearchMatch>> NormRangeIndex::Query(
    std::span<const double> q, const QueryOptions& options, QueryStats* stats,
    Trace* trace) const {
  static Counter* const queries =
      MetricsRegistry::Global().GetCounter("core.normrange.queries");
  static Counter* const buckets_visited =
      MetricsRegistry::Global().GetCounter("core.normrange.buckets_visited");
  static Counter* const buckets_pruned =
      MetricsRegistry::Global().GetCounter("core.normrange.buckets_pruned");
  static Counter* const points_scored =
      MetricsRegistry::Global().GetCounter("core.normrange.points_scored");

  IPS_RETURN_IF_ERROR(ValidateQueryOptions(options));
  if (q.size() != dim()) {
    return Status::InvalidArgument(
        "query dimension " + std::to_string(q.size()) +
        " != index dimension " + std::to_string(dim()));
  }
  if (!options.is_signed) {
    return Status::InvalidArgument(
        "norm-range top-k answers signed queries only");
  }
  std::unique_ptr<Trace> owned;
  if (options.trace && trace == nullptr) {
    owned = std::make_unique<Trace>(Name());
  }
  Trace* t = trace != nullptr ? trace : owned.get();

  std::vector<SearchMatch> best;  // sorted: score desc, index asc
  std::size_t visited = 0;
  std::size_t pruned = 0;
  std::size_t scored = 0;
  {
    TraceSpan span(t, "norm-range");
    const double query_norm = kernels::Norm(q);
    if (query_norm > 0.0) {
      const std::vector<double> direction = kernels::Normalized(q);
      const auto order = [](const SearchMatch& a, const SearchMatch& b) {
        if (a.value != b.value) return a.value > b.value;
        return a.index < b.index;
      };
      // Score of the k-th best so far: the bucket prune bound (no
      // threshold here, unlike Search, so top-k stands in for cs).
      const auto kth = [&]() {
        return best.size() < options.k
                   ? -std::numeric_limits<double>::infinity()
                   : best.back().value;
      };
      for (const Bucket& bucket : buckets_) {
        const double bucket_bound = bucket.max_norm * query_norm;
        if (bucket_bound <= kth()) {
          pruned = buckets_.size() - visited;
          break;
        }
        ++visited;
        const double local_cosine = kth() / bucket_bound;
        auto consider = [&](std::size_t position) {
          const std::uint32_t member = bucket.members[position];
          const SearchMatch m{member, kernels::Dot(data_->Row(member), q)};
          ++scored;
          const auto it = std::lower_bound(best.begin(), best.end(), m, order);
          best.insert(it, m);
          if (best.size() > options.k) best.pop_back();
        };
        if (local_cosine >= params_.lsh_cosine_threshold) {
          for (std::size_t position : bucket.tables->Query(direction)) {
            consider(position);
          }
        } else {
          for (std::size_t position = 0; position < bucket.members.size();
               ++position) {
            consider(position);
          }
        }
      }
    }
    span.AddCount("buckets_visited", visited);
    span.AddCount("buckets_pruned", pruned);
    span.AddCount("points_scored", scored);
  }
  queries->Increment();
  buckets_visited->Add(visited);
  buckets_pruned->Add(pruned);
  points_scored->Add(scored);

  QueryStats local;
  local.candidates = scored;
  local.dot_products = scored;
  local.metrics.Set("normrange.buckets_visited", visited);
  local.metrics.Set("normrange.buckets_pruned", pruned);
  local.metrics.Set("normrange.points_scored", scored);
  if (owned != nullptr) {
    local.trace = std::shared_ptr<const Trace>(std::move(owned));
  }
  if (stats != nullptr) *stats = std::move(local);
  return best;
}

}  // namespace ips
