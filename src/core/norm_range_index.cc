#include "core/norm_range_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/vector_ops.h"
#include "util/check.h"

namespace ips {

NormRangeIndex::NormRangeIndex(const Matrix& data,
                               const NormRangeParams& params, Rng* rng)
    : data_(&data), params_(params) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(data.rows(), 0u);
  IPS_CHECK_GE(params.bucket_size, 1u);
  // Sort indices by norm, descending.
  std::vector<std::uint32_t> order(data.rows());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> norms(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) norms[i] = Norm(data.Row(i));
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return norms[a] > norms[b];
  });

  for (std::size_t begin = 0; begin < order.size();
       begin += params.bucket_size) {
    const std::size_t end =
        std::min(begin + params.bucket_size, order.size());
    Bucket bucket;
    bucket.members.assign(order.begin() + begin, order.begin() + end);
    bucket.max_norm = norms[bucket.members.front()];
    for (std::uint32_t member : bucket.members) {
      bucket.directions.AppendRow(Normalized(data.Row(member)));
    }
    bucket.family = std::make_unique<SimHashFamily>(data.cols());
    bucket.tables = std::make_unique<LshTables>(
        *bucket.family, bucket.directions, params.lsh_params, rng);
    buckets_.push_back(std::move(bucket));
  }
}

std::optional<SearchMatch> NormRangeIndex::Search(std::span<const double> q,
                                                  const JoinSpec& spec) const {
  IPS_CHECK(spec.is_signed) << "NormRangeIndex answers signed MIPS";
  const double query_norm = Norm(q);
  if (query_norm == 0.0) return std::nullopt;
  const std::vector<double> direction = Normalized(q);

  SearchMatch best;
  best.value = -std::numeric_limits<double>::infinity();
  for (const Bucket& bucket : buckets_) {
    const double bucket_bound = bucket.max_norm * query_norm;
    // Prune: nothing in this (or any later) bucket can beat both the
    // current best and the cs threshold.
    if (bucket_bound <= std::max(best.value, spec.cs())) {
      buckets_pruned_ += 1;
      break;
    }
    const double local_cosine =
        std::max(best.value, spec.cs()) / bucket_bound;
    auto consider = [&](std::size_t position) {
      const std::uint32_t member = bucket.members[position];
      const double value = Dot(data_->Row(member), q);
      ++evaluated_;
      if (value > best.value) {
        best.value = value;
        best.index = member;
      }
    };
    if (local_cosine >= params_.lsh_cosine_threshold) {
      // Selective regime: probe the bucket's cosine tables.
      for (std::size_t position : bucket.tables->Query(direction)) {
        consider(position);
      }
    } else {
      // Low local threshold: scanning is cheaper than high-recall LSH.
      for (std::size_t position = 0; position < bucket.members.size();
           ++position) {
        consider(position);
      }
    }
  }
  if (best.value >= spec.cs()) return best;
  return std::nullopt;
}

}  // namespace ips
