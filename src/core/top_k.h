// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Top-k MIPS: the paper's footnote 1 notes that join results commonly
// limit each tuple's multiplicity to some k; this header provides k-best
// retrieval. Exact engines (brute force and a k-best variant of the
// ball-tree branch-and-bound) return the true top-k; the LSH engine
// returns the k best among its candidates.
//
// The Query*Rerank / QueryFromCandidates* families are the two-stage
// scorer (DESIGN.md §13): a cheap estimate pass (int8 quantized dots or
// CountSketch filter estimates) ranks the candidate set, an oversampled
// survivor set >= k is kept, and survivors are re-ranked with exact
// double-precision dots. Returned scores are always exact; recall is
// governed by the oversampling factor and calibrated by the planner.

#ifndef IPS_CORE_TOP_K_H_
#define IPS_CORE_TOP_K_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/mips_index.h"
#include "core/query.h"
#include "core/types.h"
#include "linalg/matrix.h"
#include "linalg/quantized.h"
#include "obs/trace.h"
#include "sketch/filter.h"
#include "tree/mips_tree.h"

namespace ips {

/// Exact top-k by full scan, descending score; ties break toward the
/// smaller data index (deterministic ordering). Scores are signed or
/// absolute per `is_signed`. Returns min(k, rows) entries.
std::vector<SearchMatch> TopKBruteForce(const Matrix& data,
                                        std::span<const double> q,
                                        std::size_t k, bool is_signed);

/// Exact top-k via the ball tree: branch-and-bound against the k-th
/// best score so far. Signed scores only (the tree's unsigned bound is
/// looser; use TopKBruteForce for unsigned top-k).
std::vector<SearchMatch> TopKBallTree(const MipsBallTree& tree,
                                      const Matrix& data,
                                      std::span<const double> q,
                                      std::size_t k);

/// Approximate top-k from an LshMipsIndex's candidate set: the k best
/// verified candidates (may return fewer than k).
std::vector<SearchMatch> TopKFromCandidates(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& candidates, std::size_t k,
    bool is_signed);

/// Instrumented flavor of TopKBruteForce behind the unified query API:
/// fills `stats` (candidates, dot products, "core.brute.*" registry
/// counters) and records a "brute" span when `trace` is non-null. The
/// plain TopKBruteForce above stays uninstrumented on purpose — it is
/// the baseline the obs-overhead benchmark compares against.
std::vector<SearchMatch> QueryBruteForce(const Matrix& data,
                                         std::span<const double> q,
                                         const QueryOptions& options,
                                         QueryStats* stats = nullptr,
                                         Trace* trace = nullptr);

/// Instrumented flavor of TopKFromCandidates: the LSH verify -> top-k
/// tail of a candidate pipeline. Records "verify" and "top-k" spans
/// under the trace's open span and adds the verified-candidate counts
/// to `stats`.
std::vector<SearchMatch> QueryFromCandidates(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& candidates, const QueryOptions& options,
    QueryStats* stats = nullptr, Trace* trace = nullptr);

// ---------------------------------------------------------------------
// Two-stage scoring (estimate pass -> survivors -> exact re-rank).
// ---------------------------------------------------------------------

/// Survivor policy of the quantized path: keep max(k * multiplier,
/// floor) candidates for exact re-ranking. int8 estimates are tight
/// (per-entry error <= scale/2), so modest oversampling suffices.
inline constexpr double kQuantSurvivorMultiplier = 4.0;
inline constexpr std::size_t kQuantSurvivorFloor = 32;

/// Billing rate of one int8 estimate in exact-dot equivalents, the rate
/// QueryStats::dot_products charges for the estimate pass. Kept static
/// (rather than timed per run) so stats are deterministic; the planner
/// prices the real cost from its calibrated timing ratio.
inline constexpr double kQuantEstimateDotEquivalent = 0.25;

/// Survivor-set size: max(ceil(k * multiplier), floor), capped by the
/// candidate budget when set (but never below k) and by `n`.
std::size_t SurvivorCount(std::size_t k, std::size_t n,
                          std::size_t candidate_budget, double multiplier,
                          std::size_t floor);

/// Indices of the `m` largest estimates (value descending, index
/// ascending — the project-wide deterministic order); absolute values
/// when `absolute`. Returns all indices when m >= estimates.size().
std::vector<std::size_t> TopEstimateIndices(std::span<const double> estimates,
                                            std::size_t m, bool absolute);

/// Two-stage brute force, quantized flavor: one dispatched int8 pass
/// estimates every row, the survivor set is re-ranked exactly. Records
/// "quant.estimate" / "quant.rerank" spans, fills the two-stage stats
/// fields (candidates_pruned, rerank_exact_dots), and bumps the
/// "core.quant.*" registry counters. `qdata` must be the quantization
/// of `data`.
std::vector<SearchMatch> QueryQuantizedRerank(
    const Matrix& data, const QuantizedMatrix& qdata,
    std::span<const double> q, const QueryOptions& options,
    QueryStats* stats = nullptr, Trace* trace = nullptr);

/// Two-stage brute force, sketch-filter flavor: CountSketch estimates
/// rank every row, survivors (policy from filter.params()) are
/// re-ranked exactly. Records "filter.estimate" / "filter.rerank" spans
/// and bumps "core.filter.*". `filter` must be built over `data`.
std::vector<SearchMatch> QueryFilteredRerank(
    const Matrix& data, const InnerProductFilter& filter,
    std::span<const double> q, const QueryOptions& options,
    QueryStats* stats = nullptr, Trace* trace = nullptr);

/// Candidate-set flavor of the quantized two-stage path (LSH
/// verification): estimates the gathered candidates, prunes to the
/// survivor set, re-ranks exactly. Falls back to plain exact
/// verification when the candidate set is already no larger than the
/// survivor set.
std::vector<SearchMatch> QueryFromCandidatesQuantized(
    const Matrix& data, const QuantizedMatrix& qdata,
    std::span<const double> q, const std::vector<std::size_t>& candidates,
    const QueryOptions& options, QueryStats* stats = nullptr,
    Trace* trace = nullptr);

/// Candidate-set flavor of the sketch-filter two-stage path.
std::vector<SearchMatch> QueryFromCandidatesFiltered(
    const Matrix& data, const InnerProductFilter& filter,
    std::span<const double> q, const std::vector<std::size_t>& candidates,
    const QueryOptions& options, QueryStats* stats = nullptr,
    Trace* trace = nullptr);

}  // namespace ips

#endif  // IPS_CORE_TOP_K_H_
