// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Top-k MIPS: the paper's footnote 1 notes that join results commonly
// limit each tuple's multiplicity to some k; this header provides k-best
// retrieval. Exact engines (brute force and a k-best variant of the
// ball-tree branch-and-bound) return the true top-k; the LSH engine
// returns the k best among its candidates.

#ifndef IPS_CORE_TOP_K_H_
#define IPS_CORE_TOP_K_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/mips_index.h"
#include "core/query.h"
#include "core/types.h"
#include "linalg/matrix.h"
#include "obs/trace.h"
#include "tree/mips_tree.h"

namespace ips {

/// Exact top-k by full scan, descending score; ties break toward the
/// smaller data index (deterministic ordering). Scores are signed or
/// absolute per `is_signed`. Returns min(k, rows) entries.
std::vector<SearchMatch> TopKBruteForce(const Matrix& data,
                                        std::span<const double> q,
                                        std::size_t k, bool is_signed);

/// Exact top-k via the ball tree: branch-and-bound against the k-th
/// best score so far. Signed scores only (the tree's unsigned bound is
/// looser; use TopKBruteForce for unsigned top-k).
std::vector<SearchMatch> TopKBallTree(const MipsBallTree& tree,
                                      const Matrix& data,
                                      std::span<const double> q,
                                      std::size_t k);

/// Approximate top-k from an LshMipsIndex's candidate set: the k best
/// verified candidates (may return fewer than k).
std::vector<SearchMatch> TopKFromCandidates(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& candidates, std::size_t k,
    bool is_signed);

/// Instrumented flavor of TopKBruteForce behind the unified query API:
/// fills `stats` (candidates, dot products, "core.brute.*" registry
/// counters) and records a "brute" span when `trace` is non-null. The
/// plain TopKBruteForce above stays uninstrumented on purpose — it is
/// the baseline the obs-overhead benchmark compares against.
std::vector<SearchMatch> QueryBruteForce(const Matrix& data,
                                         std::span<const double> q,
                                         const QueryOptions& options,
                                         QueryStats* stats = nullptr,
                                         Trace* trace = nullptr);

/// Instrumented flavor of TopKFromCandidates: the LSH verify -> top-k
/// tail of a candidate pipeline. Records "verify" and "top-k" spans
/// under the trace's open span and adds the verified-candidate counts
/// to `stats`.
std::vector<SearchMatch> QueryFromCandidates(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& candidates, const QueryOptions& options,
    QueryStats* stats = nullptr, Trace* trace = nullptr);

}  // namespace ips

#endif  // IPS_CORE_TOP_K_H_
