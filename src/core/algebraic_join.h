// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The algebraic exact join: compute the full product matrix Q D^T (all
// pairwise inner products at once, classically or with Strassen) and
// scan it against the threshold. This is the entry point of the
// matrix-multiplication route to IPS join that Valiant [51] and Karppa
// et al. [29] accelerate with fast rectangular multiplication -- here
// with exact classical/Strassen kernels, it serves as the
// cache-efficient exact baseline.

#ifndef IPS_CORE_ALGEBRAIC_JOIN_H_
#define IPS_CORE_ALGEBRAIC_JOIN_H_

#include "core/types.h"
#include "linalg/matrix.h"

namespace ips {

/// Exact (s, s) join via one matrix product; semantics identical to
/// ExactJoin (per-query true maximizer when its score >= spec.s).
JoinResult MatmulJoin(const Matrix& data, const Matrix& queries,
                      const JoinSpec& spec, bool use_strassen = false);

}  // namespace ips

#endif  // IPS_CORE_ALGEBRAIC_JOIN_H_
