// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The MipsIndex interface and its four implementations:
//   BruteForceIndex -- exact quadratic scan (the baseline of every
//                      experiment), with an int8 quantized-rerank
//                      two-stage variant (QueryPrecision);
//   TreeMipsIndex   -- exact Ram-Gray ball-tree branch-and-bound;
//   LshMipsIndex    -- any (A)LSH transform + base family through the
//                      (K, L) table engine, candidates re-ranked
//                      exactly or pruned first by int8 estimates;
//   SketchIndex     -- the unified sketch path: the Section 4.3
//                      linear-sketch argmax structure for unsigned k=1,
//                      and the CountSketch inner-product filter
//                      (two-stage estimate + exact re-rank) for
//                      everything else. Configured by SketchConfig.
// All implementations return the exact score of the candidate they
// report, so the (cs, s) guarantee of Definition 1 is checkable — the
// approximate precisions never return an estimated score, only an
// approximately-selected candidate set (DESIGN.md §13).
//
// Construction from untrusted input goes through the static Create
// factories, which validate dimensions, finiteness, and parameter ranges
// and return kInvalidArgument / kFailedPrecondition instead of aborting;
// the plain constructors IPS_CHECK the same preconditions and are meant
// for inputs the caller already owns.

#ifndef IPS_CORE_MIPS_INDEX_H_
#define IPS_CORE_MIPS_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/query.h"
#include "core/types.h"
#include "linalg/matrix.h"
#include "linalg/quantized.h"
#include "lsh/tables.h"
#include "lsh/transforms.h"
#include "obs/trace.h"
#include "rng/random.h"
#include "sketch/filter.h"
#include "sketch/sketch_mips.h"
#include "tree/mips_tree.h"
#include "util/status.h"

namespace ips {

/// Interface: search the (fixed) data set for a large-inner-product
/// match of a query.
class MipsIndex {
 public:
  virtual ~MipsIndex() = default;

  virtual std::string Name() const = 0;

  /// Dimension of the indexed data (and of every valid query).
  virtual std::size_t dim() const = 0;

  /// Best match the index can certify for query `q` under `spec`, with
  /// its exact score; nullopt when no candidate reaches spec.cs().
  virtual std::optional<SearchMatch> Search(std::span<const double> q,
                                            const JoinSpec& spec) const = 0;

  /// Exact inner products evaluated since construction (work measure).
  virtual std::size_t InnerProductsEvaluated() const = 0;

  /// Unified top-k entry point (core::QueryOptions / core::QueryStats,
  /// see DESIGN.md §8). Unlike Search, this path is thread-safe: it is
  /// const and mutates no index-local counters — work is reported
  /// through `stats` and the global MetricsRegistry. Returns
  /// kInvalidArgument for options the path cannot honor (e.g. signed
  /// queries on the sketch path, k > 1 on the sketch path).
  ///
  /// When options.trace is set and `trace` is null, a fresh per-query
  /// Trace is allocated and published via stats->trace; callers holding
  /// their own trace (the serve Engine) pass it to nest the index's
  /// spans under theirs.
  [[nodiscard]] virtual StatusOr<std::vector<SearchMatch>> Query(
      std::span<const double> q, const QueryOptions& options,
      QueryStats* stats = nullptr, Trace* trace = nullptr) const = 0;

  /// Pure-batch entry point: answers every row of `queries` under one
  /// shared `options` and returns one QueryResult per row, in row
  /// order. Semantically identical to calling Query once per row — the
  /// equivalence suite (tests/batch_query_test.cc) holds every index to
  /// that — but specialized implementations amortize work across the
  /// batch (tiled block scoring in brute force, shared transforms and
  /// row-grouped verification in LSH). Deadlines are a serving-layer
  /// concern (serve::RequestContext); indexes never read one.
  ///
  /// The default implementation is the per-query fallback: one Query
  /// call per row. Tracing: when options.trace is set the batch
  /// allocates one Trace for the whole call and every result's
  /// stats.trace shares it.
  ///
  /// An invalid request (bad options, dimension mismatch, or options
  /// the path cannot honor) fails the whole batch with the same Status
  /// a single Query would return. An empty `queries` yields an empty
  /// result vector.
  [[nodiscard]] virtual StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options) const;
};

/// Exact full scan, plus the int8 quantized-rerank variant.
class BruteForceIndex : public MipsIndex {
 public:
  /// `data` must outlive the index. Quantizes the data (one cheap pass,
  /// n*d bytes of codes) so kQuantizedRerank queries need no lazy
  /// build.
  explicit BruteForceIndex(const Matrix& data);

  /// Validated construction: rejects empty or non-finite data.
  /// Failpoint: "core/index-build".
  [[nodiscard]] static StatusOr<std::unique_ptr<BruteForceIndex>> Create(
      const Matrix& data);

  std::string Name() const override { return "brute-force"; }
  std::size_t dim() const override { return data_->cols(); }
  std::optional<SearchMatch> Search(std::span<const double> q,
                                    const JoinSpec& spec) const override;
  std::size_t InnerProductsEvaluated() const override { return evaluated_; }
  /// Precision: kAuto / kExact run the exact scan; kQuantizedRerank
  /// runs the two-stage int8 estimate + exact re-rank; kSketchFilter is
  /// rejected (filtered scans live on the sketch index).
  [[nodiscard]] StatusOr<std::vector<SearchMatch>> Query(
      std::span<const double> q, const QueryOptions& options,
      QueryStats* stats = nullptr, Trace* trace = nullptr) const override;
  /// Tiled implementation: one kernels::BlockTopK pass scores the whole
  /// batch against the data with cache-blocked reuse of data rows. A
  /// kQuantizedRerank batch runs the two-stage path per query; the
  /// shared int8 code matrix is the amortized state.
  [[nodiscard]] StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options) const override;

  /// The per-row-block int8 quantization of the data (the bucket join's
  /// lossless prefilter reuses it).
  const QuantizedMatrix& quantized() const { return quant_; }

 private:
  const Matrix* data_;
  QuantizedMatrix quant_;
  mutable std::size_t evaluated_ = 0;
};

/// Exact ball-tree branch-and-bound (tree/mips_tree.h).
class TreeMipsIndex : public MipsIndex {
 public:
  TreeMipsIndex(const Matrix& data, std::size_t leaf_size, Rng* rng);

  /// Validated construction: rejects empty or non-finite data,
  /// leaf_size == 0, and a null rng. Failpoint: "core/index-build".
  [[nodiscard]] static StatusOr<std::unique_ptr<TreeMipsIndex>> Create(
      const Matrix& data, std::size_t leaf_size, Rng* rng);

  /// Wraps an already-restored ball tree (MipsBallTree::Restore) — the
  /// snapshot warm-start path, which skips the O(n log n) build.
  /// `tree` must have been restored over this same `data`.
  [[nodiscard]] static StatusOr<std::unique_ptr<TreeMipsIndex>> Restore(
      const Matrix& data, MipsBallTree tree);

  std::string Name() const override { return "ball-tree"; }
  std::size_t dim() const override { return data_->cols(); }
  std::optional<SearchMatch> Search(std::span<const double> q,
                                    const JoinSpec& spec) const override;
  std::size_t InnerProductsEvaluated() const override { return evaluated_; }
  /// Signed queries only (the tree's unsigned bound is looser).
  [[nodiscard]] StatusOr<std::vector<SearchMatch>> Query(
      std::span<const double> q, const QueryOptions& options,
      QueryStats* stats = nullptr, Trace* trace = nullptr) const override;
  /// Per-query descents under one batch trace; the leaf scans inside
  /// each descent run through the dispatched gather kernel.
  [[nodiscard]] StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options) const override;

  /// The underlying ball tree, for callers that drive the (thread-safe,
  /// counter-free) QueryTopK / QueryMax primitives themselves.
  const MipsBallTree& tree() const { return tree_; }

 private:
  TreeMipsIndex(const Matrix& data, MipsBallTree tree)
      : data_(&data), tree_(std::move(tree)) {}

  const Matrix* data_;
  MipsBallTree tree_;
  mutable std::size_t evaluated_ = 0;
};

/// (A)LSH index: optional transform into hash space, (K, L) tables on
/// the transformed data, exact re-ranking of candidates.
class LshMipsIndex : public MipsIndex {
 public:
  /// `data` must outlive the index. `transform` may be null (hash the
  /// raw vectors); otherwise it must map input_dim == data.cols() and
  /// `base_family.dim()` must equal the transform's output_dim.
  /// Both `transform` and `base_family` must outlive the index.
  LshMipsIndex(const Matrix& data, const VectorTransform* transform,
               const LshFamily& base_family, LshTableParams params,
               Rng* rng);

  /// Validated construction: rejects empty or non-finite data, a
  /// transform/family dimension mismatch, k or l of zero, and a null
  /// rng. Failpoint: "core/index-build".
  [[nodiscard]] static StatusOr<std::unique_ptr<LshMipsIndex>> Create(
      const Matrix& data, const VectorTransform* transform,
      const LshFamily& base_family, LshTableParams params, Rng* rng);

  /// Restores an index from persisted buckets plus a replayed rng (see
  /// LshTables::CreateFromBuckets): re-applies the (cheap) transform to
  /// the data but skips the O(n k l) hashing pass. `rng` must carry the
  /// restored pre-build Rng::State.
  [[nodiscard]] static StatusOr<std::unique_ptr<LshMipsIndex>>
  CreateFromBuckets(
      const Matrix& data, const VectorTransform* transform,
      const LshFamily& base_family, LshTableParams params, Rng* rng,
      std::vector<std::unordered_map<std::uint64_t,
                                     std::vector<std::uint32_t>>> buckets);

  std::string Name() const override { return name_; }
  std::size_t dim() const override { return data_->cols(); }
  std::optional<SearchMatch> Search(std::span<const double> q,
                                    const JoinSpec& spec) const override;
  std::size_t InnerProductsEvaluated() const override { return evaluated_; }
  /// The full hash -> bucket -> dedup -> verify -> top-k pipeline under
  /// one "lsh" span when traced. Precision: kAuto / kExact verify every
  /// candidate exactly; kQuantizedRerank prunes large candidate sets
  /// with int8 estimates before the exact re-rank; kSketchFilter is
  /// rejected.
  [[nodiscard]] StatusOr<std::vector<SearchMatch>> Query(
      std::span<const double> q, const QueryOptions& options,
      QueryStats* stats = nullptr, Trace* trace = nullptr) const override;
  /// Probes every query's tables, then verifies candidates grouped by
  /// data row across the whole batch: each row the batch touches is
  /// loaded once and scored against every query that bucketed it.
  [[nodiscard]] StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options) const override;

  /// Mean number of candidates per query so far (work diagnostic).
  double MeanCandidates() const;

  /// Raw candidate set for `q` (data row indices), for callers that
  /// re-rank themselves (e.g. top-k retrieval, core/top_k.h).
  std::vector<std::size_t> Candidates(std::span<const double> q) const;

  /// The underlying (K, L) tables (immutable once built), for
  /// snapshotting the buckets.
  const LshTables& tables() const { return *tables_; }

 private:
  LshMipsIndex() = default;  // CreateFromBuckets fills the members.

  const Matrix* data_ = nullptr;
  const VectorTransform* transform_ = nullptr;
  Matrix transformed_data_;
  std::unique_ptr<LshTables> tables_;
  QuantizedMatrix quant_;
  std::string name_;
  mutable std::size_t evaluated_ = 0;
  mutable std::size_t queries_ = 0;
  mutable std::size_t candidates_ = 0;
};

/// One validated configuration for the whole sketch layer. This is the
/// single serving entry point into src/sketch: the Section 4.3 argmax
/// tree (sketch_mips.h), the CountSketch inner-product filter
/// (filter.h), and the cmips-via-search scaling reduction are all
/// reachable through a SketchIndex built from one SketchConfig, instead
/// of three parallel construction paths.
struct SketchConfig {
  /// The Section 4.3 argmax machinery (answers unsigned k=1 descents).
  SketchMipsParams argmax;
  /// The inner-product filter (answers everything else via the
  /// two-stage estimate + exact re-rank path).
  SketchFilterParams filter;
};

/// The unified sketch index. Unsigned k=1 queries descend the Section
/// 4.3 argmax tree; every other request (signed, k > 1) runs the
/// CountSketch filter's two-stage scan, so the index fully implements
/// the MipsIndex Query/BatchQuery contract.
class SketchIndex : public MipsIndex {
 public:
  SketchIndex(const Matrix& data, const SketchConfig& config, Rng* rng);

  /// The one validated sketch factory: rejects empty or non-finite
  /// data, invalid argmax parameters (kappa < 2, copies == 0,
  /// leaf_size == 0, non-positive bucket multiplier), invalid filter
  /// parameters (zero copies, multiplier < 1), and a null rng.
  /// Failpoint: "core/index-build".
  [[nodiscard]] static StatusOr<std::unique_ptr<SketchIndex>> Create(
      const Matrix& data, const SketchConfig& config, Rng* rng);

  std::string Name() const override { return "sketch-mips"; }
  std::size_t dim() const override { return data_->cols(); }
  /// Search keeps the Section 4.3 contract: unsigned only (CHECKs).
  std::optional<SearchMatch> Search(std::span<const double> q,
                                    const JoinSpec& spec) const override;
  std::size_t InnerProductsEvaluated() const override { return evaluated_; }
  /// Unsigned k=1 with kAuto precision descends the argmax tree;
  /// everything else (any sign, any k, or forced kSketchFilter) runs
  /// the filter's estimate + exact re-rank. kExact and kQuantizedRerank
  /// are rejected — this index scores by sketch estimate by design.
  [[nodiscard]] StatusOr<std::vector<SearchMatch>> Query(
      std::span<const double> q, const QueryOptions& options,
      QueryStats* stats = nullptr, Trace* trace = nullptr) const override;
  /// Per-query recoveries / filter scans under one batch trace; the
  /// estimate passes inside run through the dispatched kernels.
  [[nodiscard]] StatusOr<std::vector<QueryResult>> BatchQuery(
      const Matrix& queries, const QueryOptions& options) const override;

  const SketchMipsIndex& sketch() const { return sketch_; }
  const InnerProductFilter& filter() const { return filter_; }
  const SketchConfig& config() const { return config_; }

 private:
  const Matrix* data_;
  SketchConfig config_;
  SketchMipsIndex sketch_;
  InnerProductFilter filter_;
  mutable std::size_t evaluated_ = 0;
};

}  // namespace ips

#endif  // IPS_CORE_MIPS_INDEX_H_
