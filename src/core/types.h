// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Public value types of the ipsjoin core API.

#ifndef IPS_CORE_TYPES_H_
#define IPS_CORE_TYPES_H_

#include <cstddef>
#include <optional>
#include <vector>

namespace ips {

/// Specification of an approximate (cs, s) IPS join / search
/// (Definition 1): for every query with some data point scoring >= s,
/// report a data point scoring >= c*s; signed joins score by p^T q,
/// unsigned joins by |p^T q|.
struct JoinSpec {
  double s = 1.0;
  double c = 0.5;
  bool is_signed = true;

  double cs() const { return c * s; }
};

/// One reported (query, data) pair with its exact score.
struct JoinMatch {
  std::size_t query = 0;
  std::size_t data = 0;
  double value = 0.0;
};

/// Result of a join: at most one match per query (nullopt when the
/// algorithm reports none), plus accounting.
struct JoinResult {
  std::vector<std::optional<JoinMatch>> per_query;
  double seconds = 0.0;
  /// Exact inner products evaluated (work measure; n*m for brute force).
  std::size_t inner_products = 0;

  /// Number of queries with a reported match.
  std::size_t NumMatched() const;
};

/// A single search answer: data index plus its exact score.
struct SearchMatch {
  std::size_t index = 0;
  double value = 0.0;
};

}  // namespace ips

#endif  // IPS_CORE_TYPES_H_
