#include "core/algebraic_join.h"

#include <cmath>

#include "linalg/matmul.h"
#include "util/check.h"
#include "util/timer.h"

namespace ips {

JoinResult MatmulJoin(const Matrix& data, const Matrix& queries,
                      const JoinSpec& spec, bool use_strassen) {
  IPS_CHECK_EQ(data.cols(), queries.cols());
  JoinResult result;
  result.per_query.resize(queries.rows());
  WallTimer timer;
  const Matrix products = PairwiseInnerProducts(queries, data, use_strassen);
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    SearchMatch best;
    best.value = -1e300;
    for (std::size_t di = 0; di < data.rows(); ++di) {
      const double raw = products.At(qi, di);
      const double score = spec.is_signed ? raw : std::abs(raw);
      if (score > best.value) {
        best.value = score;
        best.index = di;
      }
    }
    if (best.value >= spec.s) {
      result.per_query[qi] = JoinMatch{qi, best.index, best.value};
    }
  }
  result.seconds = timer.Seconds();
  result.inner_products = queries.rows() * data.rows();
  return result;
}

}  // namespace ips
