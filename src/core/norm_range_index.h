// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// LEMP-style norm-range MIPS index (Teflioudi et al. [50], the
// recommender-systems motivation of the paper): sort data vectors by
// norm and partition them into buckets; for a query q, buckets are
// visited in decreasing max-norm order and a bucket is pruned outright
// once max_norm * ||q|| falls below the current threshold (every later
// bucket is even smaller). Inside a live bucket the problem becomes
// *cosine* similarity search at local threshold
// t_b = threshold / (max_norm_b * ||q||), solved either by a SimHash
// probe (high t_b: selective) or an exact scan (low t_b) -- the
// adaptive choice that makes LEMP effective on norm-skewed data.

#ifndef IPS_CORE_NORM_RANGE_INDEX_H_
#define IPS_CORE_NORM_RANGE_INDEX_H_

#include <memory>
#include <vector>

#include "core/mips_index.h"
#include "lsh/simhash.h"
#include "lsh/tables.h"

namespace ips {

/// Tuning of the norm-range index.
struct NormRangeParams {
  /// Data vectors per norm bucket.
  std::size_t bucket_size = 128;
  /// Local cosine threshold above which a bucket uses its LSH probe
  /// instead of an exact scan.
  double lsh_cosine_threshold = 0.7;
  /// Amplification of the per-bucket cosine tables.
  LshTableParams lsh_params = {.k = 8, .l = 16};
};

/// Signed MIPS index over norm-sorted buckets.
class NormRangeIndex : public MipsIndex {
 public:
  /// `data` must outlive the index.
  NormRangeIndex(const Matrix& data, const NormRangeParams& params,
                 Rng* rng);

  std::string Name() const override { return "norm-range(lemp)"; }
  std::size_t dim() const override { return data_->cols(); }
  std::optional<SearchMatch> Search(std::span<const double> q,
                                    const JoinSpec& spec) const override;
  std::size_t InnerProductsEvaluated() const override { return evaluated_; }
  /// Signed top-k over the norm-sorted buckets, pruning against the
  /// k-th best score so far; unlike Search this path is const-clean
  /// (no mutable counters) and reports through stats/"core.normrange.*".
  [[nodiscard]] StatusOr<std::vector<SearchMatch>> Query(
      std::span<const double> q, const QueryOptions& options,
      QueryStats* stats = nullptr, Trace* trace = nullptr) const override;

  std::size_t num_buckets() const { return buckets_.size(); }

  /// Buckets pruned (never opened) across all queries so far.
  std::size_t BucketsPruned() const { return buckets_pruned_; }

 private:
  struct Bucket {
    std::vector<std::uint32_t> members;  // original data indices
    double max_norm = 0.0;
    Matrix directions;  // normalized member vectors (rows align with
                        // members)
    std::unique_ptr<SimHashFamily> family;
    std::unique_ptr<LshTables> tables;
  };

  const Matrix* data_;
  NormRangeParams params_;
  std::vector<Bucket> buckets_;  // descending max_norm
  mutable std::size_t evaluated_ = 0;
  mutable std::size_t buckets_pruned_ = 0;
};

}  // namespace ips

#endif  // IPS_CORE_NORM_RANGE_INDEX_H_
