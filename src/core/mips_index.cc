#include "core/mips_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "core/top_k.h"
#include "linalg/validate.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ips {
namespace {

double Score(double value, const JoinSpec& spec) {
  return spec.is_signed ? value : std::abs(value);
}

// Shared head of every index's unified Query entry point: validated
// options and query, plus an index-owned Trace when the caller asked
// for tracing without supplying one.
Status ValidateQueryInputs(std::span<const double> q, std::size_t dim,
                           const QueryOptions& options) {
  IPS_RETURN_IF_ERROR(ValidateQueryOptions(options));
  if (q.size() != dim) {
    return Status::InvalidArgument(
        "query dimension " + std::to_string(q.size()) +
        " != index dimension " + std::to_string(dim));
  }
  return Status::Ok();
}

// Trace the index allocates itself when options.trace is set but the
// caller holds none; published into stats->trace on completion.
std::unique_ptr<Trace> MaybeOwnTrace(const QueryOptions& options,
                                     Trace* external, std::string label) {
  if (external != nullptr || !options.trace) return nullptr;
  return std::make_unique<Trace>(std::move(label));
}

void PublishQuery(std::unique_ptr<Trace> owned, QueryStats local,
                  QueryStats* stats) {
  if (owned != nullptr) {
    local.trace = std::shared_ptr<const Trace>(std::move(owned));
  }
  if (stats != nullptr) *stats = std::move(local);
}

std::optional<SearchMatch> FilterByThreshold(const SearchMatch& best,
                                             const JoinSpec& spec) {
  if (best.value >= spec.cs()) return best;
  return std::nullopt;
}

// Shared validation of every index factory: the dataset itself.
Status ValidateIndexData(const Matrix& data) {
  IPS_FAILPOINT("core/index-build");
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "index data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "index data"));
  return Status::Ok();
}

// Shared head of every BatchQuery: validated options plus a batch-wide
// dimension check.
Status ValidateBatchInputs(const Matrix& queries, std::size_t dim,
                           const QueryOptions& options) {
  IPS_RETURN_IF_ERROR(ValidateQueryOptions(options));
  if (queries.rows() > 0 && queries.cols() != dim) {
    return Status::InvalidArgument(
        "batch query dimension " + std::to_string(queries.cols()) +
        " != index dimension " + std::to_string(dim));
  }
  return Status::Ok();
}

// One Trace shared by every member of a traced batch (published into
// each result's stats.trace); null when tracing is off.
std::shared_ptr<Trace> MakeBatchTrace(const QueryOptions& options,
                                      std::string label) {
  if (!options.trace) return nullptr;
  return std::make_shared<Trace>(std::move(label) + ".batch");
}

// Registry accounting every batch path shares: one call, its member
// count, and how many members went through the per-query fallback
// instead of a specialized batch implementation.
void CountBatch(std::size_t members, bool fallback) {
  static Counter* const calls =
      MetricsRegistry::Global().GetCounter("core.batch.calls");
  static Counter* const queries =
      MetricsRegistry::Global().GetCounter("core.batch.queries");
  static Counter* const fallback_queries =
      MetricsRegistry::Global().GetCounter("core.batch.fallback_queries");
  calls->Increment();
  queries->Add(members);
  if (fallback) fallback_queries->Add(members);
}

// The per-query batch driver: one Query call per row under a shared
// batch trace. The default MipsIndex::BatchQuery and the paths whose
// batch win lives inside their per-query kernels (tree descents, sketch
// estimate passes) all run through this.
StatusOr<std::vector<QueryResult>> RunPerQueryBatch(
    const MipsIndex& index, const Matrix& queries,
    const QueryOptions& options, std::string_view span_name,
    bool fallback) {
  std::shared_ptr<Trace> batch_trace = MakeBatchTrace(options, index.Name());
  std::vector<QueryResult> results;
  results.reserve(queries.rows());
  {
    TraceSpan span(batch_trace.get(), span_name);
    for (std::size_t i = 0; i < queries.rows(); ++i) {
      QueryResult result;
      auto matches =
          index.Query(queries.Row(i), options, &result.stats,
                      batch_trace.get());
      if (!matches.ok()) return matches.status();
      result.matches = std::move(matches).value();
      if (batch_trace != nullptr) result.stats.trace = batch_trace;
      results.push_back(std::move(result));
    }
    span.AddCount("batch_queries", queries.rows());
  }
  CountBatch(queries.rows(), fallback);
  return results;
}

}  // namespace

StatusOr<std::vector<QueryResult>> MipsIndex::BatchQuery(
    const Matrix& queries, const QueryOptions& options) const {
  IPS_RETURN_IF_ERROR(ValidateBatchInputs(queries, dim(), options));
  if (queries.rows() == 0) return std::vector<QueryResult>();
  return RunPerQueryBatch(*this, queries, options, "batch.fallback",
                          /*fallback=*/true);
}

std::size_t JoinResult::NumMatched() const {
  std::size_t matched = 0;
  for (const auto& match : per_query) {
    if (match.has_value()) ++matched;
  }
  return matched;
}

BruteForceIndex::BruteForceIndex(const Matrix& data)
    : data_(&data), quant_(QuantizedMatrix::Quantize(data)) {
  IPS_CHECK_GT(data.rows(), 0u);
}

StatusOr<std::unique_ptr<BruteForceIndex>> BruteForceIndex::Create(
    const Matrix& data) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  return std::make_unique<BruteForceIndex>(data);
}

std::optional<SearchMatch> BruteForceIndex::Search(
    std::span<const double> q, const JoinSpec& spec) const {
  SearchMatch best;
  best.value = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < data_->rows(); ++i) {
    const double score = Score(kernels::Dot(data_->Row(i), q), spec);
    ++evaluated_;
    if (score > best.value) {
      best.value = score;
      best.index = i;
    }
  }
  return FilterByThreshold(best, spec);
}

StatusOr<std::vector<SearchMatch>> BruteForceIndex::Query(
    std::span<const double> q, const QueryOptions& options, QueryStats* stats,
    Trace* trace) const {
  IPS_RETURN_IF_ERROR(ValidateQueryInputs(q, dim(), options));
  if (options.precision == QueryPrecision::kSketchFilter) {
    return Status::InvalidArgument(
        "brute force answers exact or quantized-rerank precision; "
        "sketch-filtered scans run on the sketch index");
  }
  std::unique_ptr<Trace> owned = MaybeOwnTrace(options, trace, Name());
  Trace* t = trace != nullptr ? trace : owned.get();
  QueryStats local;
  std::vector<SearchMatch> matches;
  if (options.precision == QueryPrecision::kQuantizedRerank) {
    local.algorithm = QueryAlgo::kBruteForce;
    matches = QueryQuantizedRerank(*data_, quant_, q, options, &local, t);
  } else {
    matches = QueryBruteForce(*data_, q, options, &local, t);
  }
  PublishQuery(std::move(owned), std::move(local), stats);
  return matches;
}

StatusOr<std::vector<QueryResult>> BruteForceIndex::BatchQuery(
    const Matrix& queries, const QueryOptions& options) const {
  IPS_RETURN_IF_ERROR(ValidateBatchInputs(queries, dim(), options));
  if (options.precision == QueryPrecision::kSketchFilter) {
    return Status::InvalidArgument(
        "brute force answers exact or quantized-rerank precision; "
        "sketch-filtered scans run on the sketch index");
  }
  const std::size_t m = queries.rows();
  if (m == 0) return std::vector<QueryResult>();
  if (options.precision == QueryPrecision::kQuantizedRerank) {
    // Two-stage per query; the shared int8 code matrix (built once at
    // construction) is the amortized state across the batch.
    return RunPerQueryBatch(*this, queries, options, "brute.quant.batch",
                            /*fallback=*/false);
  }
  std::shared_ptr<Trace> batch_trace = MakeBatchTrace(options, Name());
  std::vector<kernels::TopKHeap> heaps;
  heaps.reserve(m);
  for (std::size_t i = 0; i < m; ++i) heaps.emplace_back(options.k);
  {
    // One tiled pass over the data scores the whole batch: each tile of
    // data rows is loaded once and reused across a block of queries.
    TraceSpan span(batch_trace.get(), "brute.batch");
    kernels::BlockTopK(*data_, queries, /*absolute=*/!options.is_signed,
                       heaps);
    span.AddCount("batch_queries", m);
    span.AddCount("points_scored", data_->rows() * m);
  }
  std::vector<QueryResult> results(m);
  for (std::size_t i = 0; i < m; ++i) {
    QueryResult& result = results[i];
    result.matches.reserve(std::min(options.k, data_->rows()));
    for (const auto& entry : heaps[i].TakeSorted()) {
      result.matches.push_back({entry.index, entry.value});
    }
    result.stats.algorithm = QueryAlgo::kBruteForce;
    result.stats.candidates = data_->rows();
    result.stats.dot_products = data_->rows();
    if (batch_trace != nullptr) result.stats.trace = batch_trace;
  }
  // Keep the per-path registry view consistent with m Query calls.
  static Counter* const brute_queries =
      MetricsRegistry::Global().GetCounter("core.brute.queries");
  static Counter* const points_scored =
      MetricsRegistry::Global().GetCounter("core.brute.points_scored");
  brute_queries->Add(m);
  points_scored->Add(data_->rows() * m);
  CountBatch(m, /*fallback=*/false);
  return results;
}

TreeMipsIndex::TreeMipsIndex(const Matrix& data, std::size_t leaf_size,
                             Rng* rng)
    : data_(&data), tree_(data, leaf_size, rng) {}

StatusOr<std::unique_ptr<TreeMipsIndex>> TreeMipsIndex::Create(
    const Matrix& data, std::size_t leaf_size, Rng* rng) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  if (rng == nullptr) {
    return Status::InvalidArgument("ball-tree index requires a non-null rng");
  }
  if (leaf_size < 1) {
    return Status::InvalidArgument("ball-tree leaf_size must be >= 1");
  }
  return std::make_unique<TreeMipsIndex>(data, leaf_size, rng);
}

StatusOr<std::unique_ptr<TreeMipsIndex>> TreeMipsIndex::Restore(
    const Matrix& data, MipsBallTree tree) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  if (tree.num_points() != data.rows()) {
    return Status::DataLoss("restored tree spans " +
                            std::to_string(tree.num_points()) +
                            " points but the dataset has " +
                            std::to_string(data.rows()) + " rows");
  }
  return std::unique_ptr<TreeMipsIndex>(
      new TreeMipsIndex(data, std::move(tree)));
}

std::optional<SearchMatch> TreeMipsIndex::Search(std::span<const double> q,
                                                 const JoinSpec& spec) const {
  const MipsResult result =
      spec.is_signed ? tree_.QueryMax(q) : tree_.QueryMaxAbs(q);
  evaluated_ += result.evaluated;
  SearchMatch best;
  best.index = result.index;
  best.value = Score(kernels::Dot(data_->Row(result.index), q), spec);
  return FilterByThreshold(best, spec);
}

StatusOr<std::vector<SearchMatch>> TreeMipsIndex::Query(
    std::span<const double> q, const QueryOptions& options, QueryStats* stats,
    Trace* trace) const {
  IPS_RETURN_IF_ERROR(ValidateQueryInputs(q, dim(), options));
  if (!options.is_signed) {
    return Status::InvalidArgument(
        "ball-tree top-k answers signed queries only");
  }
  if (options.precision != QueryPrecision::kAuto &&
      options.precision != QueryPrecision::kExact) {
    return Status::InvalidArgument(
        "ball-tree top-k is exact only (its branch-and-bound prunes on "
        "exact scores); use brute/lsh for quantized re-rank or the "
        "sketch index for filtered scans");
  }
  std::unique_ptr<Trace> owned = MaybeOwnTrace(options, trace, Name());
  Trace* t = trace != nullptr ? trace : owned.get();
  QueryStats local;
  local.algorithm = QueryAlgo::kBallTree;
  std::vector<SearchMatch> matches;
  TreeQueryInfo info;
  {
    TraceSpan span(t, "tree");
    for (const auto& [index, value] : tree_.QueryTopK(q, options.k, t, &info)) {
      matches.push_back({index, value});
    }
  }
  local.candidates = info.points_scored;
  local.dot_products = info.points_scored;
  local.metrics.Set("tree.nodes_visited", info.nodes_visited);
  local.metrics.Set("tree.nodes_pruned", info.nodes_pruned);
  local.metrics.Set("tree.points_scored", info.points_scored);
  PublishQuery(std::move(owned), std::move(local), stats);
  return matches;
}

StatusOr<std::vector<QueryResult>> TreeMipsIndex::BatchQuery(
    const Matrix& queries, const QueryOptions& options) const {
  IPS_RETURN_IF_ERROR(ValidateBatchInputs(queries, dim(), options));
  if (!options.is_signed) {
    return Status::InvalidArgument(
        "ball-tree top-k answers signed queries only");
  }
  if (options.precision != QueryPrecision::kAuto &&
      options.precision != QueryPrecision::kExact) {
    return Status::InvalidArgument(
        "ball-tree top-k is exact only (its branch-and-bound prunes on "
        "exact scores); use brute/lsh for quantized re-rank or the "
        "sketch index for filtered scans");
  }
  if (queries.rows() == 0) return std::vector<QueryResult>();
  // Descents stay per-query (each query prunes its own subtree); the
  // batch win is the gather-kernel leaf scan inside every descent.
  return RunPerQueryBatch(*this, queries, options, "tree.batch",
                          /*fallback=*/false);
}

LshMipsIndex::LshMipsIndex(const Matrix& data,
                           const VectorTransform* transform,
                           const LshFamily& base_family,
                           LshTableParams params, Rng* rng)
    : data_(&data), transform_(transform) {
  IPS_CHECK_GT(data.rows(), 0u);
  if (transform_ != nullptr) {
    IPS_CHECK_EQ(transform_->input_dim(), data.cols());
    IPS_CHECK_EQ(transform_->output_dim(), base_family.dim());
    transformed_data_ = transform_->TransformDataset(data);
  } else {
    IPS_CHECK_EQ(base_family.dim(), data.cols());
  }
  const Matrix& hashed =
      transform_ != nullptr ? transformed_data_ : *data_;
  tables_ = std::make_unique<LshTables>(base_family, hashed, params, rng);
  quant_ = QuantizedMatrix::Quantize(data);
  name_ = "lsh[" +
          (transform_ != nullptr ? transform_->Name() + "+" : std::string()) +
          base_family.Name() + "]";
}

StatusOr<std::unique_ptr<LshMipsIndex>> LshMipsIndex::Create(
    const Matrix& data, const VectorTransform* transform,
    const LshFamily& base_family, LshTableParams params, Rng* rng) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  if (rng == nullptr) {
    return Status::InvalidArgument("lsh index requires a non-null rng");
  }
  if (params.k < 1 || params.l < 1) {
    return Status::InvalidArgument(
        "lsh index needs k >= 1 and l >= 1, got k=" +
        std::to_string(params.k) + ", l=" + std::to_string(params.l));
  }
  if (transform != nullptr) {
    IPS_RETURN_IF_ERROR(
        ValidateDims(data, transform->input_dim(), "lsh data"));
    if (transform->output_dim() != base_family.dim()) {
      return Status::InvalidArgument(
          "transform output dimension " +
          std::to_string(transform->output_dim()) +
          " != base family dimension " +
          std::to_string(base_family.dim()));
    }
  } else {
    IPS_RETURN_IF_ERROR(ValidateDims(data, base_family.dim(), "lsh data"));
  }
  return std::make_unique<LshMipsIndex>(data, transform, base_family,
                                        params, rng);
}

StatusOr<std::unique_ptr<LshMipsIndex>> LshMipsIndex::CreateFromBuckets(
    const Matrix& data, const VectorTransform* transform,
    const LshFamily& base_family, LshTableParams params, Rng* rng,
    std::vector<std::unordered_map<std::uint64_t,
                                   std::vector<std::uint32_t>>> buckets) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  if (rng == nullptr) {
    return Status::InvalidArgument("lsh index requires a non-null rng");
  }
  if (transform != nullptr) {
    IPS_RETURN_IF_ERROR(
        ValidateDims(data, transform->input_dim(), "lsh data"));
    if (transform->output_dim() != base_family.dim()) {
      return Status::InvalidArgument(
          "transform output dimension " +
          std::to_string(transform->output_dim()) +
          " != base family dimension " +
          std::to_string(base_family.dim()));
    }
  } else {
    IPS_RETURN_IF_ERROR(ValidateDims(data, base_family.dim(), "lsh data"));
  }
  std::unique_ptr<LshMipsIndex> index(new LshMipsIndex());
  index->data_ = &data;
  index->transform_ = transform;
  // The transformed dataset is a build-time input only (it exists to
  // hash the data rows into buckets); the restored buckets already
  // carry those hashes, so the O(n dim) re-transform is skipped and
  // only queries are transformed from here on.
  auto tables = LshTables::CreateFromBuckets(base_family, data.rows(),
                                             params, rng, std::move(buckets));
  IPS_RETURN_IF_ERROR(tables.status());
  index->tables_ = std::move(tables).value();
  // Quantization is deterministic (no rng), so rebuilding it from the
  // restored data matrix reproduces the original codes exactly.
  index->quant_ = QuantizedMatrix::Quantize(data);
  index->name_ =
      "lsh[" +
      (transform != nullptr ? transform->Name() + "+" : std::string()) +
      base_family.Name() + "]";
  return index;
}

std::optional<SearchMatch> LshMipsIndex::Search(std::span<const double> q,
                                                const JoinSpec& spec) const {
  std::vector<double> transformed;
  std::span<const double> probe = q;
  if (transform_ != nullptr) {
    transformed = transform_->TransformQuery(q);
    probe = transformed;
  }
  const std::vector<std::size_t> candidates = tables_->Query(probe);
  ++queries_;
  candidates_ += candidates.size();
  SearchMatch best;
  best.value = -std::numeric_limits<double>::infinity();
  for (std::size_t index : candidates) {
    const double score = Score(kernels::Dot(data_->Row(index), q), spec);
    ++evaluated_;
    if (score > best.value) {
      best.value = score;
      best.index = index;
    }
  }
  if (candidates.empty()) return std::nullopt;
  return FilterByThreshold(best, spec);
}

StatusOr<std::vector<SearchMatch>> LshMipsIndex::Query(
    std::span<const double> q, const QueryOptions& options, QueryStats* stats,
    Trace* trace) const {
  IPS_RETURN_IF_ERROR(ValidateQueryInputs(q, dim(), options));
  if (options.precision == QueryPrecision::kSketchFilter) {
    return Status::InvalidArgument(
        "lsh verifies candidates exactly or via quantized re-rank; "
        "sketch-filtered scans run on the sketch index");
  }
  std::unique_ptr<Trace> owned = MaybeOwnTrace(options, trace, Name());
  Trace* t = trace != nullptr ? trace : owned.get();
  QueryStats local;
  local.algorithm = QueryAlgo::kLsh;
  std::vector<SearchMatch> matches;
  LshQueryInfo info;
  {
    TraceSpan span(t, "lsh");
    std::vector<double> transformed;
    std::span<const double> probe = q;
    if (transform_ != nullptr) {
      transformed = transform_->TransformQuery(q);
      probe = transformed;
    }
    const std::vector<std::size_t> candidates =
        tables_->Query(probe, t, &info);
    matches = options.precision == QueryPrecision::kQuantizedRerank
                  ? QueryFromCandidatesQuantized(*data_, quant_, q, candidates,
                                                 options, &local, t)
                  : QueryFromCandidates(*data_, q, candidates, options, &local,
                                        t);
  }
  local.metrics.Set("lsh.tables.buckets_probed", info.tables_probed);
  local.metrics.Set("lsh.tables.buckets_hit", info.buckets_hit);
  local.metrics.Set("lsh.tables.candidates_raw", info.raw_candidates);
  local.metrics.Set("lsh.tables.candidates_unique", info.unique_candidates);
  local.metrics.Set("lsh.tables.duplicates",
                    info.raw_candidates - info.unique_candidates);
  PublishQuery(std::move(owned), std::move(local), stats);
  return matches;
}

StatusOr<std::vector<QueryResult>> LshMipsIndex::BatchQuery(
    const Matrix& queries, const QueryOptions& options) const {
  IPS_RETURN_IF_ERROR(ValidateBatchInputs(queries, dim(), options));
  if (options.precision == QueryPrecision::kSketchFilter) {
    return Status::InvalidArgument(
        "lsh verifies candidates exactly or via quantized re-rank; "
        "sketch-filtered scans run on the sketch index");
  }
  const std::size_t m = queries.rows();
  if (m == 0) return std::vector<QueryResult>();
  if (options.precision == QueryPrecision::kQuantizedRerank) {
    // Quantized verification prunes per-query survivor sets, which the
    // row-grouped exact verify below cannot express; run per query.
    return RunPerQueryBatch(*this, queries, options, "lsh.quant.batch",
                            /*fallback=*/false);
  }
  std::shared_ptr<Trace> batch_trace = MakeBatchTrace(options, Name());
  std::vector<QueryResult> results(m);
  std::vector<kernels::TopKHeap> heaps;
  heaps.reserve(m);
  for (std::size_t i = 0; i < m; ++i) heaps.emplace_back(options.k);
  static Counter* const verified =
      MetricsRegistry::Global().GetCounter("core.candidates_verified");
  {
    TraceSpan span(batch_trace.get(), "lsh.batch");
    // Probe stage: transform + table lookup per query. Candidate sets
    // stay per-query; the shared work is downstream.
    std::vector<std::pair<std::size_t, std::size_t>> pairs;  // (row, query)
    {
      TraceSpan probe(batch_trace.get(), "probe");
      for (std::size_t i = 0; i < m; ++i) {
        const std::span<const double> q = queries.Row(i);
        std::vector<double> transformed;
        std::span<const double> hashed = q;
        if (transform_ != nullptr) {
          transformed = transform_->TransformQuery(q);
          hashed = transformed;
        }
        LshQueryInfo info;
        const std::vector<std::size_t> candidates =
            tables_->Query(hashed, nullptr, &info);
        for (std::size_t row : candidates) pairs.emplace_back(row, i);
        QueryStats& stats = results[i].stats;
        stats.algorithm = QueryAlgo::kLsh;
        stats.candidates = candidates.size();
        stats.dot_products = candidates.size();
        stats.metrics.Set("lsh.tables.buckets_probed", info.tables_probed);
        stats.metrics.Set("lsh.tables.buckets_hit", info.buckets_hit);
        stats.metrics.Set("lsh.tables.candidates_raw", info.raw_candidates);
        stats.metrics.Set("lsh.tables.candidates_unique",
                          info.unique_candidates);
        stats.metrics.Set("lsh.tables.duplicates",
                          info.raw_candidates - info.unique_candidates);
      }
      probe.AddCount("batch_queries", m);
    }
    // Verify stage, grouped by data row across the batch: sorting the
    // (row, query) pairs means each data row the batch bucketed is
    // loaded once and scored against every query that wants it.
    {
      TraceSpan verify(batch_trace.get(), "verify");
      std::sort(pairs.begin(), pairs.end());
      for (const auto& [row, qi] : pairs) {
        const double raw = kernels::Dot(data_->Row(row), queries.Row(qi));
        const double value = options.is_signed ? raw : std::abs(raw);
        if (heaps[qi].Accepts(value, row)) heaps[qi].Push(row, value);
      }
      verify.AddCount("candidates", pairs.size());
    }
    verified->Add(pairs.size());
  }
  for (std::size_t i = 0; i < m; ++i) {
    QueryResult& result = results[i];
    for (const auto& entry : heaps[i].TakeSorted()) {
      result.matches.push_back({entry.index, entry.value});
    }
    if (batch_trace != nullptr) result.stats.trace = batch_trace;
  }
  CountBatch(m, /*fallback=*/false);
  return results;
}

std::vector<std::size_t> LshMipsIndex::Candidates(
    std::span<const double> q) const {
  if (transform_ != nullptr) {
    return tables_->Query(transform_->TransformQuery(q));
  }
  return tables_->Query(q);
}

double LshMipsIndex::MeanCandidates() const {
  return queries_ == 0 ? 0.0
                       : static_cast<double>(candidates_) /
                             static_cast<double>(queries_);
}

namespace {

// The §4.3 argmax tree answers exactly one query shape: unsigned
// best-match. Everything else the sketch index serves goes through the
// CountSketch filter scan.
bool UsesArgmaxDescent(const QueryOptions& options) {
  return !options.is_signed && options.k == 1 &&
         options.precision == QueryPrecision::kAuto;
}

Status RejectNonSketchPrecision(const QueryOptions& options) {
  if (options.precision == QueryPrecision::kExact ||
      options.precision == QueryPrecision::kQuantizedRerank) {
    return Status::InvalidArgument(
        "sketch index scores via sketch estimates (argmax descent or "
        "filtered scan); use brute/tree/lsh for exact or quantized "
        "precision");
  }
  return Status::Ok();
}

}  // namespace

SketchIndex::SketchIndex(const Matrix& data, const SketchConfig& config,
                         Rng* rng)
    : data_(&data),
      config_(config),
      sketch_(data, config.argmax, rng),
      filter_(data, config.filter, rng) {}

StatusOr<std::unique_ptr<SketchIndex>> SketchIndex::Create(
    const Matrix& data, const SketchConfig& config, Rng* rng) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  IPS_RETURN_IF_ERROR(SketchMipsIndex::Validate(data, config.argmax, rng));
  IPS_RETURN_IF_ERROR(ValidateFilterParams(config.filter));
  return std::make_unique<SketchIndex>(data, config, rng);
}

StatusOr<std::vector<SearchMatch>> SketchIndex::Query(
    std::span<const double> q, const QueryOptions& options, QueryStats* stats,
    Trace* trace) const {
  IPS_RETURN_IF_ERROR(ValidateQueryInputs(q, dim(), options));
  IPS_RETURN_IF_ERROR(RejectNonSketchPrecision(options));
  std::unique_ptr<Trace> owned = MaybeOwnTrace(options, trace, Name());
  Trace* t = trace != nullptr ? trace : owned.get();
  QueryStats local;
  local.algorithm = QueryAlgo::kSketch;
  std::vector<SearchMatch> matches;
  if (UsesArgmaxDescent(options)) {
    SketchProbeInfo info;
    {
      TraceSpan span(t, "sketch");
      const std::size_t index = sketch_.RecoverArgmax(q, t, &info);
      matches.push_back(
          {index, std::abs(kernels::Dot(data_->Row(index), q))});
    }
    local.candidates = info.leaf_points;
    // Dot-equivalent work: each sketch row product is one length-d dot.
    local.dot_products = info.rows_multiplied + info.leaf_points;
    local.metrics.Set("sketch.levels", info.levels);
    local.metrics.Set("sketch.rows_multiplied", info.rows_multiplied);
    local.metrics.Set("sketch.leaf_points", info.leaf_points);
  } else {
    TraceSpan span(t, "sketch");
    matches = QueryFilteredRerank(*data_, filter_, q, options, &local, t);
  }
  PublishQuery(std::move(owned), std::move(local), stats);
  return matches;
}

StatusOr<std::vector<QueryResult>> SketchIndex::BatchQuery(
    const Matrix& queries, const QueryOptions& options) const {
  IPS_RETURN_IF_ERROR(ValidateBatchInputs(queries, dim(), options));
  IPS_RETURN_IF_ERROR(RejectNonSketchPrecision(options));
  if (queries.rows() == 0) return std::vector<QueryResult>();
  // Argmax recoveries and filtered scans both stay per-query; the batch
  // win is the dispatched mat-vec estimate pass inside each.
  return RunPerQueryBatch(*this, queries, options,
                          UsesArgmaxDescent(options) ? "sketch.batch"
                                                     : "sketch.filter.batch",
                          /*fallback=*/false);
}

std::optional<SearchMatch> SketchIndex::Search(std::span<const double> q,
                                               const JoinSpec& spec) const {
  IPS_CHECK(!spec.is_signed)
      << "the Section 4.3 sketch index answers unsigned queries only";
  const std::size_t index = sketch_.RecoverArgmax(q);
  ++evaluated_;
  SearchMatch best;
  best.index = index;
  best.value = std::abs(kernels::Dot(data_->Row(index), q));
  return FilterByThreshold(best, spec);
}

}  // namespace ips
