#include "core/mips_index.h"

#include <cmath>
#include <limits>

#include "linalg/validate.h"
#include "linalg/vector_ops.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ips {
namespace {

double Score(double value, const JoinSpec& spec) {
  return spec.is_signed ? value : std::abs(value);
}

std::optional<SearchMatch> FilterByThreshold(const SearchMatch& best,
                                             const JoinSpec& spec) {
  if (best.value >= spec.cs()) return best;
  return std::nullopt;
}

// Shared validation of every index factory: the dataset itself.
Status ValidateIndexData(const Matrix& data) {
  IPS_FAILPOINT("core/index-build");
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "index data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "index data"));
  return Status::Ok();
}

}  // namespace

std::size_t JoinResult::NumMatched() const {
  std::size_t matched = 0;
  for (const auto& match : per_query) {
    if (match.has_value()) ++matched;
  }
  return matched;
}

BruteForceIndex::BruteForceIndex(const Matrix& data) : data_(&data) {
  IPS_CHECK_GT(data.rows(), 0u);
}

StatusOr<std::unique_ptr<BruteForceIndex>> BruteForceIndex::Create(
    const Matrix& data) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  return std::make_unique<BruteForceIndex>(data);
}

std::optional<SearchMatch> BruteForceIndex::Search(
    std::span<const double> q, const JoinSpec& spec) const {
  SearchMatch best;
  best.value = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < data_->rows(); ++i) {
    const double score = Score(Dot(data_->Row(i), q), spec);
    ++evaluated_;
    if (score > best.value) {
      best.value = score;
      best.index = i;
    }
  }
  return FilterByThreshold(best, spec);
}

TreeMipsIndex::TreeMipsIndex(const Matrix& data, std::size_t leaf_size,
                             Rng* rng)
    : data_(&data), tree_(data, leaf_size, rng) {}

StatusOr<std::unique_ptr<TreeMipsIndex>> TreeMipsIndex::Create(
    const Matrix& data, std::size_t leaf_size, Rng* rng) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  if (rng == nullptr) {
    return Status::InvalidArgument("ball-tree index requires a non-null rng");
  }
  if (leaf_size < 1) {
    return Status::InvalidArgument("ball-tree leaf_size must be >= 1");
  }
  return std::make_unique<TreeMipsIndex>(data, leaf_size, rng);
}

std::optional<SearchMatch> TreeMipsIndex::Search(std::span<const double> q,
                                                 const JoinSpec& spec) const {
  const MipsResult result =
      spec.is_signed ? tree_.QueryMax(q) : tree_.QueryMaxAbs(q);
  evaluated_ += result.evaluated;
  SearchMatch best;
  best.index = result.index;
  best.value = Score(Dot(data_->Row(result.index), q), spec);
  return FilterByThreshold(best, spec);
}

LshMipsIndex::LshMipsIndex(const Matrix& data,
                           const VectorTransform* transform,
                           const LshFamily& base_family,
                           LshTableParams params, Rng* rng)
    : data_(&data), transform_(transform) {
  IPS_CHECK_GT(data.rows(), 0u);
  if (transform_ != nullptr) {
    IPS_CHECK_EQ(transform_->input_dim(), data.cols());
    IPS_CHECK_EQ(transform_->output_dim(), base_family.dim());
    transformed_data_ = transform_->TransformDataset(data);
  } else {
    IPS_CHECK_EQ(base_family.dim(), data.cols());
  }
  const Matrix& hashed =
      transform_ != nullptr ? transformed_data_ : *data_;
  tables_ = std::make_unique<LshTables>(base_family, hashed, params, rng);
  name_ = "lsh[" +
          (transform_ != nullptr ? transform_->Name() + "+" : std::string()) +
          base_family.Name() + "]";
}

StatusOr<std::unique_ptr<LshMipsIndex>> LshMipsIndex::Create(
    const Matrix& data, const VectorTransform* transform,
    const LshFamily& base_family, LshTableParams params, Rng* rng) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  if (rng == nullptr) {
    return Status::InvalidArgument("lsh index requires a non-null rng");
  }
  if (params.k < 1 || params.l < 1) {
    return Status::InvalidArgument(
        "lsh index needs k >= 1 and l >= 1, got k=" +
        std::to_string(params.k) + ", l=" + std::to_string(params.l));
  }
  if (transform != nullptr) {
    IPS_RETURN_IF_ERROR(
        ValidateDims(data, transform->input_dim(), "lsh data"));
    if (transform->output_dim() != base_family.dim()) {
      return Status::InvalidArgument(
          "transform output dimension " +
          std::to_string(transform->output_dim()) +
          " != base family dimension " +
          std::to_string(base_family.dim()));
    }
  } else {
    IPS_RETURN_IF_ERROR(ValidateDims(data, base_family.dim(), "lsh data"));
  }
  return std::make_unique<LshMipsIndex>(data, transform, base_family,
                                        params, rng);
}

std::optional<SearchMatch> LshMipsIndex::Search(std::span<const double> q,
                                                const JoinSpec& spec) const {
  std::vector<double> transformed;
  std::span<const double> probe = q;
  if (transform_ != nullptr) {
    transformed = transform_->TransformQuery(q);
    probe = transformed;
  }
  const std::vector<std::size_t> candidates = tables_->Query(probe);
  ++queries_;
  candidates_ += candidates.size();
  SearchMatch best;
  best.value = -std::numeric_limits<double>::infinity();
  for (std::size_t index : candidates) {
    const double score = Score(Dot(data_->Row(index), q), spec);
    ++evaluated_;
    if (score > best.value) {
      best.value = score;
      best.index = index;
    }
  }
  if (candidates.empty()) return std::nullopt;
  return FilterByThreshold(best, spec);
}

std::vector<std::size_t> LshMipsIndex::Candidates(
    std::span<const double> q) const {
  if (transform_ != nullptr) {
    return tables_->Query(transform_->TransformQuery(q));
  }
  return tables_->Query(q);
}

double LshMipsIndex::MeanCandidates() const {
  return queries_ == 0 ? 0.0
                       : static_cast<double>(candidates_) /
                             static_cast<double>(queries_);
}

SketchIndex::SketchIndex(const Matrix& data, const SketchMipsParams& params,
                         Rng* rng)
    : data_(&data), sketch_(data, params, rng) {}

StatusOr<std::unique_ptr<SketchIndex>> SketchIndex::Create(
    const Matrix& data, const SketchMipsParams& params, Rng* rng) {
  IPS_RETURN_IF_ERROR(ValidateIndexData(data));
  IPS_RETURN_IF_ERROR(SketchMipsIndex::Validate(data, params, rng));
  return std::make_unique<SketchIndex>(data, params, rng);
}

std::optional<SearchMatch> SketchIndex::Search(std::span<const double> q,
                                               const JoinSpec& spec) const {
  IPS_CHECK(!spec.is_signed)
      << "the Section 4.3 sketch index answers unsigned queries only";
  const std::size_t index = sketch_.RecoverArgmax(q);
  ++evaluated_;
  SearchMatch best;
  best.index = index;
  best.value = std::abs(Dot(data_->Row(index), q));
  return FilterByThreshold(best, spec);
}

}  // namespace ips
