#include "core/dataset.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {

Matrix MakeUnitBallGaussian(std::size_t n, std::size_t dim, double min_norm,
                            Rng* rng) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GE(min_norm, 0.0);
  IPS_CHECK_LE(min_norm, 1.0);
  Matrix points(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<double> row = points.Row(i);
    for (double& v : row) v = rng->NextGaussian();
    kernels::NormalizeInPlace(row);
    const double norm = min_norm + (1.0 - min_norm) * rng->NextDouble();
    kernels::ScaleInPlace(row, norm);
  }
  return points;
}

Matrix MakeLatentFactorVectors(std::size_t n, std::size_t dim, double skew,
                               Rng* rng) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GE(skew, 0.0);
  Matrix points(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<double> row = points.Row(i);
    for (double& v : row) v = rng->NextGaussian();
    kernels::NormalizeInPlace(row);
    const double norm =
        std::pow(static_cast<double>(i + 1), -skew);  // Zipf-like decay
    kernels::ScaleInPlace(row, norm);
  }
  return points;
}

Matrix MakeBinarySets(std::size_t n, std::size_t dim, std::size_t weight,
                      Rng* rng) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GE(dim, weight);
  IPS_CHECK_GE(weight, 1u);
  Matrix points(n, dim);
  std::vector<std::size_t> permutation;
  for (std::size_t i = 0; i < n; ++i) {
    rng->Permutation(dim, &permutation);
    for (std::size_t w = 0; w < weight; ++w) {
      points.At(i, permutation[w]) = 1.0;
    }
  }
  return points;
}

PlantedInstance MakePlantedInstance(std::size_t num_data,
                                    std::size_t num_queries, std::size_t dim,
                                    double target, double query_radius,
                                    Rng* rng) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(target, 0.0);
  IPS_CHECK_LE(target, query_radius);
  IPS_CHECK_GE(num_data, num_queries);
  PlantedInstance instance;
  instance.target = target;
  // Background noise: directions near-orthogonal w.h.p. in high dim,
  // with data norms in [0.2, 1].
  instance.data = MakeUnitBallGaussian(num_data, dim, 0.2, rng);
  instance.queries = Matrix(num_queries, dim);
  instance.plants.resize(num_queries);
  std::vector<std::size_t> permutation;
  rng->Permutation(num_data, &permutation);
  for (std::size_t i = 0; i < num_queries; ++i) {
    const std::size_t plant = permutation[i];
    instance.plants[i] = plant;
    // Make the planted data point a unit vector and the query its scaled
    // copy plus a small orthogonal-ish perturbation.
    const std::span<double> data_row = instance.data.Row(plant);
    kernels::NormalizeInPlace(data_row);
    const std::span<double> query_row = instance.queries.Row(i);
    for (std::size_t t = 0; t < dim; ++t) {
      query_row[t] = target * data_row[t] + 0.01 * rng->NextGaussian();
    }
    const double norm = kernels::Norm(query_row);
    if (norm > query_radius) {
      kernels::ScaleInPlace(query_row, query_radius / norm);
    }
  }
  return instance;
}

}  // namespace ips
