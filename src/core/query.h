// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The unified query API every answer path speaks (see DESIGN.md §8):
//
//   QueryOptions -- one request shape (k, recall target, candidate
//       budget, forced algorithm, trace on/off) accepted by every
//       index's Query entry point and carried inside the serving
//       layer's Request envelope (serve/request.h; transport-level
//       fields like the deadline live in RequestContext, not here);
//   QueryStats   -- one accounting shape populated by every path, with
//       per-algorithm extensions namespaced as metric labels in
//       `metrics` instead of bespoke struct fields;
//   QueryResult  -- matches + stats + the planner's decision.
//
// These are the only request/response types; the serve layer's former
// aliases (TopKRequest, ServeStats, PlanRequest, ServeAlgo) are gone.

#ifndef IPS_CORE_QUERY_H_
#define IPS_CORE_QUERY_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ips {

/// The four answer paths a query can be dispatched to.
enum class QueryAlgo {
  kBruteForce = 0,
  kBallTree = 1,
  kLsh = 2,
  kSketch = 3,
};

inline constexpr std::size_t kNumQueryAlgos = 4;

/// Short stable name of `algo` ("brute", "tree", "lsh", "sketch"); also
/// the algorithm's span name and registry metric prefix segment.
std::string_view QueryAlgoName(QueryAlgo algo);

/// Scoring precision of the answer path (DESIGN.md §13). The two
/// approximate modes run the two-stage scorer: a cheap estimate pass
/// (int8 fixed-point dots / CountSketch filter estimates) ranks every
/// candidate, an oversampled survivor set >= k is kept, and survivors
/// are re-ranked with exact double-precision dots — returned scores are
/// always exact; only the *selection* is approximate.
enum class QueryPrecision {
  /// Let the planner (or the path's natural default) decide: exact for
  /// brute/tree/lsh, filter-estimated for sketch.
  kAuto = 0,
  /// Exact double-precision scoring throughout.
  kExact = 1,
  /// int8 quantized estimate pass + exact re-rank (brute, lsh).
  kQuantizedRerank = 2,
  /// CountSketch filter estimate pass + exact re-rank (sketch index
  /// full scans, lsh candidate pruning, tree leaf pruning).
  kSketchFilter = 3,
};

inline constexpr std::size_t kNumQueryPrecisions = 4;

/// Short stable name of `precision` ("auto", "exact", "quant",
/// "filter"); metric label segment and bench JSON key.
std::string_view QueryPrecisionName(QueryPrecision precision);

/// One top-k query, uniform across the engine, the scheduler, and every
/// index. Fields an answer path cannot honor are rejected (forced tree
/// on unsigned queries). Purely algorithmic: transport-level fields
/// (tenant, priority, deadline) live in serve::RequestContext so batch
/// coalescing can key on this struct alone.
struct QueryOptions {
  std::size_t k = 1;
  /// Fraction of the exact top-k the answer must recover, in (0, 1].
  double recall_target = 0.9;
  /// Soft cap on exact dot products (0 = unbounded).
  std::size_t candidate_budget = 0;
  bool is_signed = true;
  /// Bypass the planner and force an answer path (A/B comparisons,
  /// benchmarks). The forced path must be able to answer the request
  /// (e.g. tree is signed-only) or the query returns kInvalidArgument.
  std::optional<QueryAlgo> force_algorithm;
  /// Scoring precision. kAuto lets the planner pick any variant whose
  /// calibrated recall clears the target; an explicit value forces the
  /// mode, and a path that cannot honor it (tree + kQuantizedRerank,
  /// sketch + kExact) rejects with kInvalidArgument at query time.
  QueryPrecision precision = QueryPrecision::kAuto;
  /// Record a per-stage span tree for this query (published through
  /// QueryStats::trace and the global TraceRing).
  bool trace = false;
};

/// Validates the request fields: k >= 1, recall target in (0, 1],
/// precision a known mode.
Status ValidateQueryOptions(const QueryOptions& options);

/// The planner's verdict for one query (core-level so QueryResult can
/// carry it; produced by serve::Planner).
struct PlanDecision {
  QueryAlgo algorithm = QueryAlgo::kBruteForce;
  /// Scoring precision the plan resolved to. kAuto appears only when
  /// the decision is the sketch index's native §4.3 argmax descent
  /// (neither exact nor a two-stage re-rank); every other decision
  /// commits to a concrete mode.
  QueryPrecision precision = QueryPrecision::kExact;
  double expected_dot_products = 0.0;
  double expected_recall = 1.0;
  /// One-line human-readable justification (for logs and benches).
  std::string reason;
};

/// What one query cost and how it was answered — the single accounting
/// struct of every path. Algorithm-specific detail goes into `metrics`
/// under registry metric names, not into new fields.
struct QueryStats {
  QueryAlgo algorithm = QueryAlgo::kBruteForce;
  /// Candidate data points whose exact score was computed.
  std::size_t candidates = 0;
  /// Exact inner products evaluated (dot-product-equivalent work for the
  /// sketch path, which spends its time on sketch-row products, and for
  /// the two-stage paths, whose estimate pass is billed at its measured
  /// fraction of an exact dot).
  std::size_t dot_products = 0;
  /// Two-stage accounting: candidates ranked by the estimate pass but
  /// pruned before exact scoring, and exact dots spent on the survivor
  /// re-rank. Zero on exact paths.
  std::size_t candidates_pruned = 0;
  std::size_t rerank_exact_dots = 0;
  /// Engine execution time (planning + search), excluding queue time.
  double exec_seconds = 0.0;
  /// Time spent queued in the batch scheduler; 0 for direct calls.
  double queue_seconds = 0.0;
  /// False when the request finished after its deadline (scheduler only).
  bool deadline_met = true;
  /// Queries whose work this object accounts for: 1 for a single query,
  /// the member count after Merge()-ing a batch's per-query stats.
  std::size_t batch_size = 1;
  /// Scatter-gather shard accounting (serve/sharded_engine.h); all zero
  /// for single-engine paths. shards_total = shards the query was
  /// fanned out to, shards_ok answered, shards_failed lost (failed,
  /// skipped by an open circuit breaker, or out of retry budget),
  /// shards_hedged answered through the cheap hedge fallback instead of
  /// the primary path. shards_ok + shards_failed == shards_total.
  std::size_t shards_total = 0;
  std::size_t shards_ok = 0;
  std::size_t shards_failed = 0;
  std::size_t shards_hedged = 0;
  /// Labeled per-algorithm extensions, e.g. "lsh.tables.buckets_probed".
  MetricSet metrics;
  /// Per-stage span tree, when QueryOptions::trace was set.
  std::shared_ptr<const Trace> trace;

  double TotalSeconds() const { return exec_seconds + queue_seconds; }

  /// Folds `other` into this: counters and times sum, batch_size sums,
  /// deadline_met ANDs, labeled metrics add key-wise. The algorithm and
  /// trace of `this` are kept (an aggregate describes one batch, whose
  /// members share a path and a batch-level trace). This is the one
  /// aggregation primitive — there is no separate batch-stats type.
  void Merge(const QueryStats& other);
};

/// One served answer: ranked matches plus what they cost and why that
/// path was chosen.
struct QueryResult {
  std::vector<SearchMatch> matches;
  QueryStats stats;
  PlanDecision plan;
  /// True when the answer covers only part of the dataset: a
  /// scatter-gather query lost one or more shards (stats.shards_failed)
  /// but still returned the merged top-k of the surviving shards
  /// (graceful degradation, DESIGN.md §11). Always false on
  /// single-engine paths.
  bool partial = false;
};

}  // namespace ips

#endif  // IPS_CORE_QUERY_H_
