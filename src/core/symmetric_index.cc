#include "core/symmetric_index.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "linalg/validate.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ips {

SymmetricMipsIndex::SymmetricMipsIndex(const Matrix& data, double epsilon,
                                       LshTableParams params, Rng* rng)
    : data_(&data),
      transform_(data.cols(), epsilon, /*fingerprint_bits=*/24),
      base_(transform_.output_dim()),
      lsh_(data, &transform_, base_, params, rng) {
  for (std::size_t i = 0; i < data.rows(); ++i) {
    members_[transform_.Fingerprint(data.Row(i))].push_back(
        static_cast<std::uint32_t>(i));
  }
}

StatusOr<std::unique_ptr<SymmetricMipsIndex>> SymmetricMipsIndex::Create(
    const Matrix& data, double epsilon, LshTableParams params, Rng* rng) {
  IPS_FAILPOINT("core/symmetric-build");
  if (rng == nullptr) {
    return Status::InvalidArgument(
        "symmetric index requires a non-null rng");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument(
        "incoherence epsilon must lie in (0, 1), got " +
        std::to_string(epsilon));
  }
  if (params.k < 1 || params.l < 1) {
    return Status::InvalidArgument(
        "symmetric index needs k >= 1 and l >= 1, got k=" +
        std::to_string(params.k) + ", l=" + std::to_string(params.l));
  }
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "symmetric index data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "symmetric index data"));
  IPS_RETURN_IF_ERROR(ValidateMaxNorm(data, 1.0, "symmetric index data"));
  return std::make_unique<SymmetricMipsIndex>(data, epsilon, params, rng);
}

bool SymmetricMipsIndex::LookupExact(std::span<const double> q,
                                     std::size_t* index) const {
  IPS_CHECK(index != nullptr);
  const auto it = members_.find(transform_.Fingerprint(q));
  if (it == members_.end()) return false;
  for (std::uint32_t candidate : it->second) {
    const std::span<const double> row = data_->Row(candidate);
    bool equal = row.size() == q.size();
    for (std::size_t t = 0; equal && t < q.size(); ++t) {
      equal = row[t] == q[t];
    }
    if (equal) {
      *index = candidate;
      return true;
    }
  }
  return false;
}

std::optional<SearchMatch> SymmetricMipsIndex::Search(
    std::span<const double> q, const JoinSpec& spec) const {
  // Section 4.2's initial step: if q is itself a data vector, the LSH
  // guarantee does not cover the (q, q) pair; answer it exactly.
  std::size_t exact_index = 0;
  if (LookupExact(q, &exact_index)) {
    const double raw = kernels::Dot(q, q);
    const double score = spec.is_signed ? raw : std::abs(raw);
    if (score >= spec.cs()) {
      return SearchMatch{exact_index, score};
    }
    // q^T q below threshold: fall through to the LSH for other matches.
  }
  return lsh_.Search(q, spec);
}

std::size_t SymmetricMipsIndex::InnerProductsEvaluated() const {
  return lsh_.InnerProductsEvaluated();
}

StatusOr<std::vector<SearchMatch>> SymmetricMipsIndex::Query(
    std::span<const double> q, const QueryOptions& options, QueryStats* stats,
    Trace* trace) const {
  static Counter* const queries =
      MetricsRegistry::Global().GetCounter("core.symmetric.queries");
  static Counter* const membership_hits =
      MetricsRegistry::Global().GetCounter("core.symmetric.membership_hits");
  // Own the trace here (not in the inner LSH) so the membership span
  // lands on the same tree as the LSH pipeline's.
  std::unique_ptr<Trace> owned;
  if (options.trace && trace == nullptr) {
    owned = std::make_unique<Trace>(Name());
  }
  Trace* t = trace != nullptr ? trace : owned.get();

  std::size_t exact_index = 0;
  bool member = false;
  {
    TraceSpan span(t, "membership");
    member = LookupExact(q, &exact_index);
  }
  QueryStats local;
  auto inner = lsh_.Query(q, options, &local, t);
  IPS_RETURN_IF_ERROR(inner.status());
  std::vector<SearchMatch> matches = std::move(inner).value();
  if (member) {
    membership_hits->Increment();
    local.metrics.Set("symmetric.membership_hit", 1);
    // Section 4.2's initial step: the relaxed LSH guarantee disregards
    // the (q, q) pair, so splice the exact self-match in if the tables
    // missed it.
    bool present = false;
    for (const SearchMatch& m : matches) present = present || m.index == exact_index;
    if (!present) {
      const double raw = kernels::Dot(q, q);
      matches.push_back({exact_index, options.is_signed ? raw : std::abs(raw)});
      std::sort(matches.begin(), matches.end(),
                [](const SearchMatch& a, const SearchMatch& b) {
                  if (a.value != b.value) return a.value > b.value;
                  return a.index < b.index;
                });
      if (matches.size() > options.k) matches.resize(options.k);
      local.candidates += 1;
      local.dot_products += 1;
    }
  }
  queries->Increment();
  if (owned != nullptr) {
    local.trace = std::shared_ptr<const Trace>(std::move(owned));
  }
  if (stats != nullptr) *stats = std::move(local);
  return matches;
}

}  // namespace ips
