#include "core/top_k.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace ips {
namespace {

std::vector<SearchMatch> KBest(std::vector<SearchMatch> scored,
                               std::size_t k) {
  // Score descending, then index ascending: equal scores always rank in
  // the same order, so results are stable across engines, thread counts,
  // and planner A/B comparisons.
  std::sort(scored.begin(), scored.end(),
            [](const SearchMatch& a, const SearchMatch& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.index < b.index;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace

std::vector<SearchMatch> TopKBruteForce(const Matrix& data,
                                        std::span<const double> q,
                                        std::size_t k, bool is_signed) {
  IPS_CHECK_GE(k, 1u);
  std::vector<double> raw(data.rows());
  kernels::MatVec(data, q, raw);
  std::vector<SearchMatch> scored;
  scored.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    scored.push_back({i, is_signed ? raw[i] : std::abs(raw[i])});
  }
  return KBest(std::move(scored), k);
}

std::vector<SearchMatch> TopKBallTree(const MipsBallTree& tree,
                                      const Matrix& data,
                                      std::span<const double> q,
                                      std::size_t k) {
  (void)data;
  std::vector<SearchMatch> result;
  for (const auto& [index, value] : tree.QueryTopK(q, k)) {
    result.push_back({index, value});
  }
  return result;
}

std::vector<SearchMatch> TopKFromCandidates(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& candidates, std::size_t k,
    bool is_signed) {
  IPS_CHECK_GE(k, 1u);
  std::vector<double> raw(candidates.size());
  kernels::GatherScores(data, candidates, q, raw);
  std::vector<SearchMatch> scored;
  scored.reserve(candidates.size());
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    scored.push_back({candidates[j], is_signed ? raw[j] : std::abs(raw[j])});
  }
  return KBest(std::move(scored), k);
}

std::vector<SearchMatch> QueryBruteForce(const Matrix& data,
                                         std::span<const double> q,
                                         const QueryOptions& options,
                                         QueryStats* stats, Trace* trace) {
  static Counter* const queries =
      MetricsRegistry::Global().GetCounter("core.brute.queries");
  static Counter* const points_scored =
      MetricsRegistry::Global().GetCounter("core.brute.points_scored");
  std::vector<SearchMatch> matches;
  {
    TraceSpan span(trace, "brute");
    matches = TopKBruteForce(data, q, options.k, options.is_signed);
    span.AddCount("points_scored", data.rows());
  }
  // One pair of per-thread relaxed increments per query — nothing in
  // the scan loop itself, so the instrumented path tracks the plain one.
  queries->Increment();
  points_scored->Add(data.rows());
  if (stats != nullptr) {
    stats->algorithm = QueryAlgo::kBruteForce;
    stats->candidates += data.rows();
    stats->dot_products += data.rows();
  }
  return matches;
}

std::vector<SearchMatch> QueryFromCandidates(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& candidates, const QueryOptions& options,
    QueryStats* stats, Trace* trace) {
  static Counter* const verified =
      MetricsRegistry::Global().GetCounter("core.candidates_verified");
  std::vector<SearchMatch> scored;
  {
    TraceSpan span(trace, "verify");
    std::vector<double> raw(candidates.size());
    kernels::GatherScores(data, candidates, q, raw);
    scored.reserve(candidates.size());
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      scored.push_back(
          {candidates[j], options.is_signed ? raw[j] : std::abs(raw[j])});
    }
    span.AddCount("candidates", candidates.size());
  }
  std::vector<SearchMatch> matches;
  {
    TraceSpan span(trace, "top-k");
    matches = KBest(std::move(scored), options.k);
    span.AddCount("k", options.k);
  }
  verified->Add(candidates.size());
  if (stats != nullptr) {
    stats->candidates += candidates.size();
    stats->dot_products += candidates.size();
  }
  return matches;
}

}  // namespace ips
