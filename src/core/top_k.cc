#include "core/top_k.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace ips {
namespace {

std::vector<SearchMatch> KBest(std::vector<SearchMatch> scored,
                               std::size_t k) {
  // Score descending, then index ascending: equal scores always rank in
  // the same order, so results are stable across engines, thread counts,
  // and planner A/B comparisons.
  std::sort(scored.begin(), scored.end(),
            [](const SearchMatch& a, const SearchMatch& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.index < b.index;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace

std::vector<SearchMatch> TopKBruteForce(const Matrix& data,
                                        std::span<const double> q,
                                        std::size_t k, bool is_signed) {
  IPS_CHECK_GE(k, 1u);
  std::vector<double> raw(data.rows());
  kernels::MatVec(data, q, raw);
  std::vector<SearchMatch> scored;
  scored.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    scored.push_back({i, is_signed ? raw[i] : std::abs(raw[i])});
  }
  return KBest(std::move(scored), k);
}

std::vector<SearchMatch> TopKBallTree(const MipsBallTree& tree,
                                      const Matrix& data,
                                      std::span<const double> q,
                                      std::size_t k) {
  (void)data;
  std::vector<SearchMatch> result;
  for (const auto& [index, value] : tree.QueryTopK(q, k)) {
    result.push_back({index, value});
  }
  return result;
}

std::vector<SearchMatch> TopKFromCandidates(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& candidates, std::size_t k,
    bool is_signed) {
  IPS_CHECK_GE(k, 1u);
  std::vector<double> raw(candidates.size());
  kernels::GatherScores(data, candidates, q, raw);
  std::vector<SearchMatch> scored;
  scored.reserve(candidates.size());
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    scored.push_back({candidates[j], is_signed ? raw[j] : std::abs(raw[j])});
  }
  return KBest(std::move(scored), k);
}

std::vector<SearchMatch> QueryBruteForce(const Matrix& data,
                                         std::span<const double> q,
                                         const QueryOptions& options,
                                         QueryStats* stats, Trace* trace) {
  static Counter* const queries =
      MetricsRegistry::Global().GetCounter("core.brute.queries");
  static Counter* const points_scored =
      MetricsRegistry::Global().GetCounter("core.brute.points_scored");
  std::vector<SearchMatch> matches;
  {
    TraceSpan span(trace, "brute");
    matches = TopKBruteForce(data, q, options.k, options.is_signed);
    span.AddCount("points_scored", data.rows());
  }
  // One pair of per-thread relaxed increments per query — nothing in
  // the scan loop itself, so the instrumented path tracks the plain one.
  queries->Increment();
  points_scored->Add(data.rows());
  if (stats != nullptr) {
    stats->algorithm = QueryAlgo::kBruteForce;
    stats->candidates += data.rows();
    stats->dot_products += data.rows();
  }
  return matches;
}

std::vector<SearchMatch> QueryFromCandidates(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& candidates, const QueryOptions& options,
    QueryStats* stats, Trace* trace) {
  static Counter* const verified =
      MetricsRegistry::Global().GetCounter("core.candidates_verified");
  std::vector<SearchMatch> scored;
  {
    TraceSpan span(trace, "verify");
    std::vector<double> raw(candidates.size());
    kernels::GatherScores(data, candidates, q, raw);
    scored.reserve(candidates.size());
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      scored.push_back(
          {candidates[j], options.is_signed ? raw[j] : std::abs(raw[j])});
    }
    span.AddCount("candidates", candidates.size());
  }
  std::vector<SearchMatch> matches;
  {
    TraceSpan span(trace, "top-k");
    matches = KBest(std::move(scored), options.k);
    span.AddCount("k", options.k);
  }
  verified->Add(candidates.size());
  if (stats != nullptr) {
    stats->candidates += candidates.size();
    stats->dot_products += candidates.size();
  }
  return matches;
}

// ---------------------------------------------------------------------
// Two-stage scoring.
// ---------------------------------------------------------------------

std::size_t SurvivorCount(std::size_t k, std::size_t n,
                          std::size_t candidate_budget, double multiplier,
                          std::size_t floor) {
  std::size_t m = std::max(
      static_cast<std::size_t>(
          std::ceil(static_cast<double>(k) * multiplier)),
      floor);
  if (candidate_budget > 0) m = std::min(m, std::max(candidate_budget, k));
  return std::min(std::max(m, k), n);
}

std::vector<std::size_t> TopEstimateIndices(std::span<const double> estimates,
                                            std::size_t m, bool absolute) {
  IPS_CHECK_GE(m, 1u);
  std::vector<std::size_t> out;
  if (m >= estimates.size()) {
    out.resize(estimates.size());
    for (std::size_t i = 0; i < estimates.size(); ++i) out[i] = i;
    return out;
  }
  kernels::TopKHeap heap(m);
  double heap_floor = heap.Floor();
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    const double value = absolute ? std::abs(estimates[i]) : estimates[i];
    if (value < heap_floor) continue;
    if (heap.Accepts(value, i)) {
      heap.Push(i, value);
      heap_floor = heap.Floor();
    }
  }
  for (const auto& entry : heap.TakeSorted()) out.push_back(entry.index);
  return out;
}

namespace {

// Shared tail of the four two-stage entry points: exact re-rank of the
// survivor set plus the pruning/billing bookkeeping. `estimated` is the
// size of the candidate pool the estimate pass ranked; `estimate_cost`
// its dot-equivalent billing; `prefix` is "quant" or "filter".
std::vector<SearchMatch> RerankSurvivors(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& survivors, std::size_t estimated,
    double estimate_cost_ratio, const char* prefix, Counter* queries,
    Counter* pruned_counter, Counter* rerank_counter,
    const QueryOptions& options, QueryStats* stats, Trace* trace) {
  std::vector<SearchMatch> matches;
  {
    TraceSpan span(trace, std::string(prefix) + ".rerank");
    matches = TopKFromCandidates(data, q, survivors, options.k,
                                 options.is_signed);
    span.AddCount("rerank_dots", survivors.size());
  }
  const std::size_t pruned = estimated - survivors.size();
  const std::size_t estimate_cost = static_cast<std::size_t>(std::ceil(
      static_cast<double>(estimated) * estimate_cost_ratio));
  queries->Increment();
  pruned_counter->Add(pruned);
  rerank_counter->Add(survivors.size());
  if (stats != nullptr) {
    stats->candidates += survivors.size();
    stats->candidates_pruned += pruned;
    stats->rerank_exact_dots += survivors.size();
    stats->dot_products += survivors.size() + estimate_cost;
    stats->metrics.Add(std::string("core.") + prefix + ".candidates_pruned",
                       pruned);
    stats->metrics.Add(std::string("core.") + prefix + ".rerank_dots",
                       survivors.size());
  }
  return matches;
}

struct QuantCounters {
  Counter* queries;
  Counter* pruned;
  Counter* rerank;
};

const QuantCounters& QuantRegistryCounters() {
  static const QuantCounters counters = {
      MetricsRegistry::Global().GetCounter("core.quant.queries"),
      MetricsRegistry::Global().GetCounter("core.quant.candidates_pruned"),
      MetricsRegistry::Global().GetCounter("core.quant.rerank_dots")};
  return counters;
}

const QuantCounters& FilterRegistryCounters() {
  static const QuantCounters counters = {
      MetricsRegistry::Global().GetCounter("core.filter.queries"),
      MetricsRegistry::Global().GetCounter("core.filter.candidates_pruned"),
      MetricsRegistry::Global().GetCounter("core.filter.rerank_dots")};
  return counters;
}

}  // namespace

std::vector<SearchMatch> QueryQuantizedRerank(
    const Matrix& data, const QuantizedMatrix& qdata,
    std::span<const double> q, const QueryOptions& options,
    QueryStats* stats, Trace* trace) {
  IPS_CHECK_EQ(qdata.rows(), data.rows());
  const std::size_t n = data.rows();
  const std::size_t m =
      SurvivorCount(options.k, n, options.candidate_budget,
                    kQuantSurvivorMultiplier, kQuantSurvivorFloor);
  std::vector<std::size_t> survivors;
  {
    TraceSpan span(trace, "quant.estimate");
    const QuantizedVector qq = QuantizeVector(q);
    std::vector<double> estimates(n);
    qdata.EstimateAll(qq, estimates);
    survivors = TopEstimateIndices(estimates, m, !options.is_signed);
    span.AddCount("points_estimated", n);
    span.AddCount("survivors", survivors.size());
  }
  const QuantCounters& counters = QuantRegistryCounters();
  return RerankSurvivors(data, q, survivors, n, kQuantEstimateDotEquivalent,
                         "quant", counters.queries, counters.pruned,
                         counters.rerank, options, stats, trace);
}

std::vector<SearchMatch> QueryFilteredRerank(
    const Matrix& data, const InnerProductFilter& filter,
    std::span<const double> q, const QueryOptions& options,
    QueryStats* stats, Trace* trace) {
  IPS_CHECK_EQ(filter.rows(), data.rows());
  const std::size_t n = data.rows();
  const SketchFilterParams& params = filter.params();
  const std::size_t m =
      SurvivorCount(options.k, n, options.candidate_budget,
                    params.survivor_multiplier, params.survivor_floor);
  std::vector<std::size_t> survivors;
  {
    TraceSpan span(trace, "filter.estimate");
    const std::vector<double> sq = filter.SketchQuery(q);
    std::vector<double> estimates(n);
    filter.EstimateAll(sq, estimates);
    survivors = TopEstimateIndices(estimates, m, !options.is_signed);
    span.AddCount("points_estimated", n);
    span.AddCount("survivors", survivors.size());
  }
  const QuantCounters& counters = FilterRegistryCounters();
  return RerankSurvivors(data, q, survivors, n, filter.CostRatio(),
                         "filter", counters.queries, counters.pruned,
                         counters.rerank, options, stats, trace);
}

std::vector<SearchMatch> QueryFromCandidatesQuantized(
    const Matrix& data, const QuantizedMatrix& qdata,
    std::span<const double> q, const std::vector<std::size_t>& candidates,
    const QueryOptions& options, QueryStats* stats, Trace* trace) {
  const std::size_t m =
      SurvivorCount(options.k, candidates.size(), options.candidate_budget,
                    kQuantSurvivorMultiplier, kQuantSurvivorFloor);
  if (m >= candidates.size()) {
    // Nothing to prune: exact verification is no more expensive.
    return QueryFromCandidates(data, q, candidates, options, stats, trace);
  }
  std::vector<std::size_t> survivors;
  {
    TraceSpan span(trace, "quant.estimate");
    const QuantizedVector qq = QuantizeVector(q);
    std::vector<double> estimates(candidates.size());
    qdata.EstimateGathered(qq, candidates, estimates);
    const std::vector<std::size_t> kept =
        TopEstimateIndices(estimates, m, !options.is_signed);
    survivors.reserve(kept.size());
    for (std::size_t j : kept) survivors.push_back(candidates[j]);
    span.AddCount("points_estimated", candidates.size());
    span.AddCount("survivors", survivors.size());
  }
  const QuantCounters& counters = QuantRegistryCounters();
  return RerankSurvivors(data, q, survivors, candidates.size(),
                         kQuantEstimateDotEquivalent, "quant",
                         counters.queries, counters.pruned, counters.rerank,
                         options, stats, trace);
}

std::vector<SearchMatch> QueryFromCandidatesFiltered(
    const Matrix& data, const InnerProductFilter& filter,
    std::span<const double> q, const std::vector<std::size_t>& candidates,
    const QueryOptions& options, QueryStats* stats, Trace* trace) {
  const SketchFilterParams& params = filter.params();
  const std::size_t m =
      SurvivorCount(options.k, candidates.size(), options.candidate_budget,
                    params.survivor_multiplier, params.survivor_floor);
  if (m >= candidates.size()) {
    return QueryFromCandidates(data, q, candidates, options, stats, trace);
  }
  std::vector<std::size_t> survivors;
  {
    TraceSpan span(trace, "filter.estimate");
    const std::vector<double> sq = filter.SketchQuery(q);
    std::vector<double> estimates(candidates.size());
    filter.EstimateGathered(sq, candidates, estimates);
    const std::vector<std::size_t> kept =
        TopEstimateIndices(estimates, m, !options.is_signed);
    survivors.reserve(kept.size());
    for (std::size_t j : kept) survivors.push_back(candidates[j]);
    span.AddCount("points_estimated", candidates.size());
    span.AddCount("survivors", survivors.size());
  }
  const QuantCounters& counters = FilterRegistryCounters();
  return RerankSurvivors(data, q, survivors, candidates.size(),
                         filter.CostRatio(), "filter", counters.queries,
                         counters.pruned, counters.rerank, options, stats,
                         trace);
}

}  // namespace ips
