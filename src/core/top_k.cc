#include "core/top_k.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"
#include "util/check.h"

namespace ips {
namespace {

std::vector<SearchMatch> KBest(std::vector<SearchMatch> scored,
                               std::size_t k) {
  // Score descending, then index ascending: equal scores always rank in
  // the same order, so results are stable across engines, thread counts,
  // and planner A/B comparisons.
  std::sort(scored.begin(), scored.end(),
            [](const SearchMatch& a, const SearchMatch& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.index < b.index;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace

std::vector<SearchMatch> TopKBruteForce(const Matrix& data,
                                        std::span<const double> q,
                                        std::size_t k, bool is_signed) {
  IPS_CHECK_GE(k, 1u);
  std::vector<SearchMatch> scored;
  scored.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const double raw = Dot(data.Row(i), q);
    scored.push_back({i, is_signed ? raw : std::abs(raw)});
  }
  return KBest(std::move(scored), k);
}

std::vector<SearchMatch> TopKBallTree(const MipsBallTree& tree,
                                      const Matrix& data,
                                      std::span<const double> q,
                                      std::size_t k) {
  (void)data;
  std::vector<SearchMatch> result;
  for (const auto& [index, value] : tree.QueryTopK(q, k)) {
    result.push_back({index, value});
  }
  return result;
}

std::vector<SearchMatch> TopKFromCandidates(
    const Matrix& data, std::span<const double> q,
    const std::vector<std::size_t>& candidates, std::size_t k,
    bool is_signed) {
  IPS_CHECK_GE(k, 1u);
  std::vector<SearchMatch> scored;
  scored.reserve(candidates.size());
  for (std::size_t index : candidates) {
    const double raw = Dot(data.Row(index), q);
    scored.push_back({index, is_signed ? raw : std::abs(raw)});
  }
  return KBest(std::move(scored), k);
}

}  // namespace ips
