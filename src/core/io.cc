#include "core/io.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/failpoint.h"

namespace ips {
namespace {

// Parses one CSV line into `row`; returns a non-OK status on bad cells.
// Every error names the 1-based line and column so a single bad cell in
// a large file is findable.
Status ParseLine(const std::string& line, std::size_t line_number,
                 std::vector<double>* row) {
  IPS_FAILPOINT("io/parse-line");
  row->clear();
  std::size_t begin = 0;
  std::size_t column = 0;
  while (begin <= line.size()) {
    ++column;
    std::size_t end = line.find(',', begin);
    if (end == std::string::npos) end = line.size();
    const std::string cell = line.substr(begin, end - begin);
    const std::string position = "at line " + std::to_string(line_number) +
                                 ", column " + std::to_string(column);
    if (cell.empty()) {
      return Status::InvalidArgument("empty cell " + position);
    }
    char* parse_end = nullptr;
    const double value = std::strtod(cell.c_str(), &parse_end);
    if (parse_end == cell.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("bad number '" + cell + "' " +
                                     position);
    }
    // Reject what strtod accepts but no finite dataset contains: literal
    // nan/inf spellings and values overflowing double ("1e999" parses to
    // +inf). Underflow to a subnormal stays finite and is accepted.
    if (!std::isfinite(value)) {
      return Status::InvalidArgument("non-finite value '" + cell + "' " +
                                     position);
    }
    row->push_back(value);
    if (end == line.size()) break;
    begin = end + 1;
  }
  return Status::Ok();
}

StatusOr<Matrix> ParseStream(std::istream& in) {
  Matrix matrix;
  std::string line;
  std::vector<double> row;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    IPS_RETURN_IF_ERROR(ParseLine(line, line_number, &row));
    if (matrix.rows() > 0 && row.size() != matrix.cols()) {
      return Status::InvalidArgument(
          "ragged row at line " + std::to_string(line_number) + ": got " +
          std::to_string(row.size()) + " columns, expected " +
          std::to_string(matrix.cols()));
    }
    matrix.AppendRow(row);
  }
  if (matrix.rows() == 0) {
    return Status::InvalidArgument("no data rows");
  }
  return matrix;
}

}  // namespace

StatusOr<Matrix> ParseMatrixCsv(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in);
}

StatusOr<Matrix> LoadMatrixCsv(const std::string& path) {
  IPS_FAILPOINT("io/read");
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return ParseStream(file);
}

Status SaveMatrixCsv(const std::string& path, const Matrix& matrix) {
  IPS_FAILPOINT("io/write");
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot write " + path);
  }
  file.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    const std::span<const double> row = matrix.Row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j > 0) file << ',';
      file << row[j];
    }
    file << '\n';
  }
  if (!file.good()) {
    return Status::Internal("write failure on " + path);
  }
  return Status::Ok();
}

}  // namespace ips
