#include "core/io.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/failpoint.h"

namespace ips {
namespace {

// Parses one CSV line into `row`; returns a non-OK status on bad cells.
// Every error names the 1-based line and column so a single bad cell in
// a large file is findable.
Status ParseLine(const std::string& line, std::size_t line_number,
                 std::vector<double>* row) {
  IPS_FAILPOINT("io/parse-line");
  row->clear();
  std::size_t begin = 0;
  std::size_t column = 0;
  while (begin <= line.size()) {
    ++column;
    std::size_t end = line.find(',', begin);
    if (end == std::string::npos) end = line.size();
    const std::string cell = line.substr(begin, end - begin);
    const std::string position = "at line " + std::to_string(line_number) +
                                 ", column " + std::to_string(column);
    if (cell.empty()) {
      return Status::InvalidArgument("empty cell " + position);
    }
    char* parse_end = nullptr;
    const double value = std::strtod(cell.c_str(), &parse_end);
    if (parse_end == cell.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("bad number '" + cell + "' " +
                                     position);
    }
    // Reject what strtod accepts but no finite dataset contains: literal
    // nan/inf spellings and values overflowing double ("1e999" parses to
    // +inf). Underflow to a subnormal stays finite and is accepted.
    if (!std::isfinite(value)) {
      return Status::InvalidArgument("non-finite value '" + cell + "' " +
                                     position);
    }
    row->push_back(value);
    if (end == line.size()) break;
    begin = end + 1;
  }
  return Status::Ok();
}

constexpr std::size_t kCsvChunkBytes = 256 * 1024;

// First pass of the two-pass load: streams the input through a bounded
// chunk buffer counting the data rows (and the column count of the
// first one) so the parse pass can reserve the matrix storage exactly.
// Without the reserve, vector growth doubling during AppendRow spikes
// peak load RSS to ~2x the dataset.
void CountCsvShape(std::istream& in, std::size_t* rows, std::size_t* cols) {
  *rows = 0;
  *cols = 0;
  std::vector<char> chunk(kCsvChunkBytes);
  std::size_t line_len = 0;
  char first_char = '\0';
  std::size_t commas = 0;
  bool have_cols = false;
  const auto flush_line = [&] {
    // Matches the parse pass: a line is data unless it is empty (after
    // stripping a trailing '\r') or starts with '#'.
    const bool blank =
        line_len == 0 || (line_len == 1 && first_char == '\r');
    if (!blank && first_char != '#') {
      ++*rows;
      if (!have_cols) {
        *cols = commas + 1;
        have_cols = true;
      }
    }
    line_len = 0;
    commas = 0;
  };
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    for (std::size_t i = 0; i < got; ++i) {
      const char c = chunk[i];
      if (c == '\n') {
        flush_line();
        continue;
      }
      if (line_len == 0) first_char = c;
      if (c == ',' && !have_cols) ++commas;
      ++line_len;
    }
  }
  if (line_len > 0) flush_line();
}

StatusOr<Matrix> ParseStream(std::istream& in,
                             std::size_t reserve_doubles = 0) {
  Matrix matrix;
  if (reserve_doubles > 0) matrix.data().reserve(reserve_doubles);
  std::string line;
  std::vector<double> row;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    IPS_RETURN_IF_ERROR(ParseLine(line, line_number, &row));
    if (matrix.rows() > 0 && row.size() != matrix.cols()) {
      return Status::InvalidArgument(
          "ragged row at line " + std::to_string(line_number) + ": got " +
          std::to_string(row.size()) + " columns, expected " +
          std::to_string(matrix.cols()));
    }
    matrix.AppendRow(row);
  }
  if (matrix.rows() == 0) {
    return Status::InvalidArgument("no data rows");
  }
  return matrix;
}

}  // namespace

StatusOr<Matrix> ParseMatrixCsv(const std::string& text) {
  std::istringstream in(text);
  std::size_t rows = 0;
  std::size_t cols = 0;
  CountCsvShape(in, &rows, &cols);
  in.clear();
  in.seekg(0);
  return ParseStream(in, rows * cols);
}

StatusOr<Matrix> LoadMatrixCsv(const std::string& path) {
  IPS_FAILPOINT("io/read");
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  // Two passes through the file, both in bounded memory: count, then
  // parse into exactly-reserved storage.
  std::size_t rows = 0;
  std::size_t cols = 0;
  CountCsvShape(file, &rows, &cols);
  file.clear();
  file.seekg(0);
  return ParseStream(file, rows * cols);
}

Status SaveMatrixCsv(const std::string& path, const Matrix& matrix) {
  IPS_FAILPOINT("io/write");
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot write " + path);
  }
  file.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    const std::span<const double> row = matrix.Row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j > 0) file << ',';
      file << row[j];
    }
    file << '\n';
  }
  if (!file.good()) {
    return Status::Internal("write failure on " + path);
  }
  return Status::Ok();
}

}  // namespace ips
