#include "core/similarity_join.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "linalg/vector_ops.h"
#include "util/check.h"
#include "util/timer.h"

namespace ips {

JoinResult ExactJoin(const Matrix& data, const Matrix& queries,
                     const JoinSpec& spec, ThreadPool* pool) {
  IPS_CHECK_EQ(data.cols(), queries.cols());
  JoinResult result;
  result.per_query.resize(queries.rows());
  WallTimer timer;
  std::atomic<std::size_t> inner_products{0};
  ParallelFor(pool, queries.rows(), [&](std::size_t begin, std::size_t end) {
    std::size_t local_products = 0;
    for (std::size_t qi = begin; qi < end; ++qi) {
      const std::span<const double> q = queries.Row(qi);
      SearchMatch best;
      best.value = -std::numeric_limits<double>::infinity();
      for (std::size_t di = 0; di < data.rows(); ++di) {
        const double raw = Dot(data.Row(di), q);
        const double score = spec.is_signed ? raw : std::abs(raw);
        ++local_products;
        if (score > best.value) {
          best.value = score;
          best.index = di;
        }
      }
      if (best.value >= spec.s) {
        result.per_query[qi] = JoinMatch{qi, best.index, best.value};
      }
    }
    inner_products += local_products;
  });
  result.seconds = timer.Seconds();
  result.inner_products = inner_products.load();
  return result;
}

JoinResult IndexJoin(const MipsIndex& index, const Matrix& queries,
                     const JoinSpec& spec) {
  JoinResult result;
  result.per_query.resize(queries.rows());
  WallTimer timer;
  const std::size_t products_before = index.InnerProductsEvaluated();
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto match = index.Search(queries.Row(qi), spec);
    if (match.has_value()) {
      result.per_query[qi] = JoinMatch{qi, match->index, match->value};
    }
  }
  result.seconds = timer.Seconds();
  result.inner_products = index.InnerProductsEvaluated() - products_before;
  return result;
}

std::size_t VerifyJoinContract(const JoinResult& result,
                               const JoinResult& truth, const JoinSpec& spec,
                               double* recall) {
  IPS_CHECK_EQ(result.per_query.size(), truth.per_query.size());
  std::size_t promised = 0;
  std::size_t answered = 0;
  std::size_t violations = 0;
  for (std::size_t qi = 0; qi < truth.per_query.size(); ++qi) {
    const auto& true_match = truth.per_query[qi];
    if (!true_match.has_value() || true_match->value < spec.s) continue;
    ++promised;
    const auto& reported = result.per_query[qi];
    if (reported.has_value() && reported->value >= spec.cs()) {
      ++answered;
    } else {
      ++violations;
    }
  }
  if (recall != nullptr) {
    *recall = promised == 0 ? 1.0
                            : static_cast<double>(answered) /
                                  static_cast<double>(promised);
  }
  return violations;
}

}  // namespace ips
