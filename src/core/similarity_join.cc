#include "core/similarity_join.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "linalg/validate.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace ips {
namespace {

// One bulk Add per join run — nothing inside the scan loops.
void RecordExactJoinRun(const JoinResult& result, std::size_t queries) {
  static Counter* const runs =
      MetricsRegistry::Global().GetCounter("core.join.exact.runs");
  static Counter* const query_count =
      MetricsRegistry::Global().GetCounter("core.join.exact.queries");
  static Counter* const products =
      MetricsRegistry::Global().GetCounter("core.join.exact.inner_products");
  static Histogram* const seconds =
      MetricsRegistry::Global().GetHistogram("core.join.exact.seconds");
  runs->Increment();
  query_count->Add(queries);
  products->Add(result.inner_products);
  seconds->Observe(result.seconds);
}

void RecordIndexJoinRun(const JoinResult& result, std::size_t queries) {
  static Counter* const runs =
      MetricsRegistry::Global().GetCounter("core.join.index.runs");
  static Counter* const query_count =
      MetricsRegistry::Global().GetCounter("core.join.index.queries");
  static Counter* const products =
      MetricsRegistry::Global().GetCounter("core.join.index.inner_products");
  static Histogram* const seconds =
      MetricsRegistry::Global().GetHistogram("core.join.index.seconds");
  runs->Increment();
  query_count->Add(queries);
  products->Add(result.inner_products);
  seconds->Observe(result.seconds);
}

}  // namespace

Status ValidateJoinSpec(const JoinSpec& spec) {
  if (!std::isfinite(spec.s) || spec.s <= 0.0) {
    return Status::InvalidArgument(
        "join threshold s must be finite and positive, got " +
        std::to_string(spec.s));
  }
  if (!std::isfinite(spec.c) || spec.c <= 0.0 || spec.c > 1.0) {
    return Status::InvalidArgument(
        "approximation factor c must lie in (0, 1], got " +
        std::to_string(spec.c));
  }
  return Status::Ok();
}

JoinResult ExactJoin(const Matrix& data, const Matrix& queries,
                     const JoinSpec& spec, ThreadPool* pool) {
  IPS_CHECK_EQ(data.cols(), queries.cols());
  JoinResult result;
  result.per_query.resize(queries.rows());
  WallTimer timer;
  std::atomic<std::size_t> inner_products{0};
  ParallelFor(pool, queries.rows(), [&](std::size_t begin, std::size_t end) {
    std::size_t local_products = 0;
    for (std::size_t qi = begin; qi < end; ++qi) {
      const std::span<const double> q = queries.Row(qi);
      SearchMatch best;
      best.value = -std::numeric_limits<double>::infinity();
      for (std::size_t di = 0; di < data.rows(); ++di) {
        const double raw = kernels::Dot(data.Row(di), q);
        const double score = spec.is_signed ? raw : std::abs(raw);
        ++local_products;
        if (score > best.value) {
          best.value = score;
          best.index = di;
        }
      }
      if (best.value >= spec.s) {
        result.per_query[qi] = JoinMatch{qi, best.index, best.value};
      }
    }
    inner_products += local_products;
  });
  result.seconds = timer.Seconds();
  result.inner_products = inner_products.load();
  RecordExactJoinRun(result, queries.rows());
  return result;
}

JoinResult IndexJoin(const MipsIndex& index, const Matrix& queries,
                     const JoinSpec& spec) {
  JoinResult result;
  result.per_query.resize(queries.rows());
  WallTimer timer;
  const std::size_t products_before = index.InnerProductsEvaluated();
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto match = index.Search(queries.Row(qi), spec);
    if (match.has_value()) {
      result.per_query[qi] = JoinMatch{qi, match->index, match->value};
    }
  }
  result.seconds = timer.Seconds();
  result.inner_products = index.InnerProductsEvaluated() - products_before;
  RecordIndexJoinRun(result, queries.rows());
  return result;
}

StatusOr<JoinResult> ExactJoinChecked(const Matrix& data,
                                      const Matrix& queries,
                                      const JoinSpec& spec,
                                      ThreadPool* pool) {
  IPS_FAILPOINT("core/exact-join");
  IPS_RETURN_IF_ERROR(ValidateJoinSpec(spec));
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "data"));
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(queries, "queries"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(queries, "queries"));
  IPS_RETURN_IF_ERROR(ValidateDims(queries, data.cols(), "queries"));

  JoinResult result;
  result.per_query.resize(queries.rows());
  WallTimer timer;
  std::atomic<std::size_t> inner_products{0};
  const Status status = ParallelForStatus(
      pool, queries.rows(),
      [&](std::size_t begin, std::size_t end) -> Status {
        IPS_FAILPOINT("core/exact-join-chunk");
        std::size_t local_products = 0;
        for (std::size_t qi = begin; qi < end; ++qi) {
          const std::span<const double> q = queries.Row(qi);
          SearchMatch best;
          best.value = -std::numeric_limits<double>::infinity();
          for (std::size_t di = 0; di < data.rows(); ++di) {
            const double raw = kernels::Dot(data.Row(di), q);
            const double score = spec.is_signed ? raw : std::abs(raw);
            ++local_products;
            if (score > best.value) {
              best.value = score;
              best.index = di;
            }
          }
          if (best.value >= spec.s) {
            result.per_query[qi] = JoinMatch{qi, best.index, best.value};
          }
        }
        inner_products += local_products;
        return Status::Ok();
      });
  IPS_RETURN_IF_ERROR(status);
  result.seconds = timer.Seconds();
  result.inner_products = inner_products.load();
  RecordExactJoinRun(result, queries.rows());
  return result;
}

StatusOr<JoinResult> IndexJoinChecked(const MipsIndex& index,
                                      const Matrix& queries,
                                      const JoinSpec& spec) {
  IPS_RETURN_IF_ERROR(ValidateJoinSpec(spec));
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(queries, "queries"));
  IPS_RETURN_IF_ERROR(ValidateFinite(queries, "queries"));
  IPS_RETURN_IF_ERROR(ValidateDims(queries, index.dim(), "queries"));
  return IndexJoin(index, queries, spec);
}

std::size_t VerifyJoinContract(const JoinResult& result,
                               const JoinResult& truth, const JoinSpec& spec,
                               double* recall) {
  IPS_CHECK_EQ(result.per_query.size(), truth.per_query.size());
  std::size_t promised = 0;
  std::size_t answered = 0;
  std::size_t violations = 0;
  for (std::size_t qi = 0; qi < truth.per_query.size(); ++qi) {
    const auto& true_match = truth.per_query[qi];
    if (!true_match.has_value() || true_match->value < spec.s) continue;
    ++promised;
    const auto& reported = result.per_query[qi];
    if (reported.has_value() && reported->value >= spec.cs()) {
      ++answered;
    } else {
      ++violations;
    }
  }
  if (recall != nullptr) {
    *recall = promised == 0 ? 1.0
                            : static_cast<double>(answered) /
                                  static_cast<double>(promised);
  }
  return violations;
}

}  // namespace ips
