// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Join drivers: run a MipsIndex over a query set to produce the
// (cs, s) join of Definition 1, the exact brute-force join baseline,
// and the verifier that checks a join result against ground truth.

#ifndef IPS_CORE_SIMILARITY_JOIN_H_
#define IPS_CORE_SIMILARITY_JOIN_H_

#include <cstddef>

#include "core/mips_index.h"
#include "core/types.h"
#include "linalg/matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ips {

/// Definition 1 well-formedness of a join specification: s must be a
/// positive finite threshold and c an approximation factor in (0, 1].
/// Returns kInvalidArgument naming the offending field otherwise.
Status ValidateJoinSpec(const JoinSpec& spec);

/// Exact (s, s) join by full quadratic scan; the per-query entry is the
/// true maximizer when its score >= spec.s, nullopt otherwise.
/// `pool` may be null (single-threaded).
JoinResult ExactJoin(const Matrix& data, const Matrix& queries,
                     const JoinSpec& spec, ThreadPool* pool = nullptr);

/// Approximate join driven by any MipsIndex: one Search per query.
JoinResult IndexJoin(const MipsIndex& index, const Matrix& queries,
                     const JoinSpec& spec);

/// Validated flavor of ExactJoin for untrusted input: rejects an invalid
/// spec, empty/non-finite matrices, and a data/query dimension mismatch
/// with a Status instead of aborting; a worker failure (exception or
/// injected fault) cancels the remaining chunks and surfaces here as a
/// non-OK Status. Failpoint: "core/exact-join".
StatusOr<JoinResult> ExactJoinChecked(const Matrix& data,
                                      const Matrix& queries,
                                      const JoinSpec& spec,
                                      ThreadPool* pool = nullptr);

/// Validated flavor of IndexJoin: rejects an invalid spec and queries
/// that are empty, non-finite, or of the wrong dimension for `index`.
StatusOr<JoinResult> IndexJoinChecked(const MipsIndex& index,
                                      const Matrix& queries,
                                      const JoinSpec& spec);

/// Definition 1 compliance of `result` against the exact join `truth`:
/// counts queries where truth has a match with score >= s but the result
/// reports nothing or reports a pair scoring < c*s. Returns the number
/// of violated queries (0 = the (cs, s) contract held everywhere) and,
/// through `recall`, the fraction of promised queries answered.
std::size_t VerifyJoinContract(const JoinResult& result,
                               const JoinResult& truth, const JoinSpec& spec,
                               double* recall);

}  // namespace ips

#endif  // IPS_CORE_SIMILARITY_JOIN_H_
