// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The complete Section 4.2 search procedure: the symmetric-incoherent
// LSH gives no collision guarantee for a query identical to a data
// vector (the relaxed LSH definition disregards that pair), so the
// paper prescribes "an initial step that verifies whether a query
// vector is in the input set and, if this is the case, returns the
// vector q itself if q^T q >= s". This wrapper adds exactly that exact-
// membership step in front of a symmetric LshMipsIndex.

#ifndef IPS_CORE_SYMMETRIC_INDEX_H_
#define IPS_CORE_SYMMETRIC_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/mips_index.h"
#include "lsh/simhash.h"
#include "lsh/transforms.h"

namespace ips {

/// Symmetric MIPS index per Section 4.2: membership check + symmetric
/// incoherent LSH.
class SymmetricMipsIndex : public MipsIndex {
 public:
  /// Builds the incoherent lift (coherence epsilon), the base family in
  /// the lifted space, the (K, L) tables, and the exact membership map.
  /// `data` must outlive the index. Preconditions are IPS_CHECKed;
  /// prefer Create for untrusted input.
  SymmetricMipsIndex(const Matrix& data, double epsilon,
                     LshTableParams params, Rng* rng);

  /// Validated construction: rejects empty or non-finite data, rows
  /// outside the unit ball (Section 4.2's embedding needs ||x|| <= 1),
  /// epsilon outside (0, 1), k or l of zero, and a null rng with a
  /// Status instead of aborting. Failpoint: "core/symmetric-build".
  [[nodiscard]] static StatusOr<std::unique_ptr<SymmetricMipsIndex>> Create(
      const Matrix& data, double epsilon, LshTableParams params, Rng* rng);

  std::string Name() const override { return "symmetric-incoherent-lsh"; }
  std::size_t dim() const override { return data_->cols(); }
  std::optional<SearchMatch> Search(std::span<const double> q,
                                    const JoinSpec& spec) const override;
  std::size_t InnerProductsEvaluated() const override;
  /// Membership check (a "membership" span) followed by the inner LSH
  /// pipeline; an exact self-match the tables missed is spliced into
  /// the top-k.
  [[nodiscard]] StatusOr<std::vector<SearchMatch>> Query(
      std::span<const double> q, const QueryOptions& options,
      QueryStats* stats = nullptr, Trace* trace = nullptr) const override;

  /// True iff `q` equals (bitwise) some data row; sets *index when so.
  bool LookupExact(std::span<const double> q, std::size_t* index) const;

  const SymmetricIncoherentTransform& transform() const {
    return transform_;
  }

 private:
  const Matrix* data_;
  SymmetricIncoherentTransform transform_;
  SimHashFamily base_;
  LshMipsIndex lsh_;
  // Exact membership: fingerprint -> candidate row indices (fingerprint
  // collisions resolved by full comparison).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> members_;
};

}  // namespace ips

#endif  // IPS_CORE_SYMMETRIC_INDEX_H_
