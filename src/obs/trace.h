// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Per-query trace spans. A Trace owns an arena of nested spans for ONE
// query and is written by ONE thread at a time (queries execute on a
// single scheduler worker); TraceSpan is the RAII handle that opens a
// span on construction and closes it with the measured wall time on
// destruction. Completed traces are published to the process-wide
// TraceRing, a bounded mutex-protected ring exportable as JSON or a
// util/table summary.
//
// Span hierarchy per algorithm (see DESIGN.md §8):
//   serve/query -> serve/plan, then one of
//     brute                      (single span)
//     tree   -> descent, leaf_scan
//     lsh    -> hash, bucket, dedup, verify, top-k
//     sketch -> probe, rerank

#ifndef IPS_OBS_TRACE_H_
#define IPS_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/table.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace ips {

class Trace;

/// RAII span: opens a child of the trace's currently-open span and
/// closes it (recording elapsed wall seconds) on destruction. A null
/// trace yields a no-op span, so instrumented code can pass `Trace*`
/// unconditionally.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches (or accumulates into) a named integer count on this span,
  /// e.g. AddCount("candidates", 117).
  void AddCount(std::string_view key, std::uint64_t delta);

 private:
  Trace* trace_ = nullptr;  // null => disabled
  std::size_t index_ = 0;   // span index in the trace arena
  WallTimer timer_;
};

/// Span tree for one query. Single-writer: all TraceSpan open/close and
/// RecordSpan calls must come from one thread at a time; once finished
/// the trace is immutable and may be shared freely (TraceRing hands out
/// shared_ptr<const Trace>).
class Trace {
 public:
  struct Span {
    std::string name;
    double seconds = 0.0;
    std::size_t parent = kNoParent;  // index into spans(); root has none
    std::size_t depth = 0;
    std::vector<std::pair<std::string, std::uint64_t>> counts;
  };

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  explicit Trace(std::string label) : label_(std::move(label)) {}

  /// Records an already-measured child of the currently-open span (for
  /// durations accumulated across non-contiguous code, e.g. the summed
  /// leaf-scan time inside a tree descent). Returns the span index.
  std::size_t RecordSpan(std::string_view name, double seconds);

  /// Attaches (or accumulates into) a named count on span
  /// `span_index` (as TraceSpan::AddCount, for RecordSpan spans).
  void AddCount(std::size_t span_index, std::string_view key,
                std::uint64_t delta);

  const std::string& label() const { return label_; }
  const std::vector<Span>& spans() const { return spans_; }

  /// First span named `name` in creation (pre-)order, or nullptr.
  const Span* FindSpan(std::string_view name) const;

  /// Sum of a named count over every span (all stages of a pipeline).
  std::uint64_t TotalCount(std::string_view key) const;

  /// Nested JSON object: {"label": ..., "spans": [{"name", "seconds",
  /// "counts": {...}, "children": [...]}]}.
  std::string ToJson() const;

  /// Indented span tree with seconds and counts, one row per span.
  TablePrinter ToTable() const;

 private:
  friend class TraceSpan;

  std::size_t OpenSpan(std::string_view name);
  void CloseSpan(std::size_t index, double seconds);

  std::string label_;
  std::vector<Span> spans_;
  std::vector<std::size_t> open_;  // stack of open span indices
};

/// Process-wide bounded ring of completed traces (most recent first in
/// Recent()). Thread-safe; Record is mutex-protected but runs outside
/// any query hot loop.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  /// The process-wide ring (leaked singleton: valid forever).
  static TraceRing& Global();

  void Record(std::shared_ptr<const Trace> trace) IPS_EXCLUDES(mutex_);

  /// Most-recent-first snapshot, at most `limit` traces (0 = all).
  std::vector<std::shared_ptr<const Trace>> Recent(std::size_t limit = 0) const
      IPS_EXCLUDES(mutex_);

  std::size_t size() const IPS_EXCLUDES(mutex_);
  void Clear() IPS_EXCLUDES(mutex_);

  /// JSON array of Trace::ToJson() objects, most recent first.
  /// Failpoint: "obs/export" — an injected export failure must never
  /// affect recorded traces or in-flight queries.
  [[nodiscard]] StatusOr<std::string> ExportJson(std::size_t limit = 0) const
      IPS_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  // ring_[head_] = oldest completed trace.
  std::vector<std::shared_ptr<const Trace>> ring_ IPS_GUARDED_BY(mutex_);
  std::size_t head_ IPS_GUARDED_BY(mutex_) = 0;
  std::size_t count_ IPS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ips

#endif  // IPS_OBS_TRACE_H_
