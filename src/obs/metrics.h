// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Low-overhead process-wide metrics: named counters, gauges, and
// log-scale histograms behind a MetricsRegistry. The write fast path is
// per-thread — each thread owns a cache-line-padded cell per metric and
// increments it with a relaxed atomic, so hot loops never contend on a
// shared cache line; readers merge every thread's cells under the
// metric's mutex. Metric objects live as long as their registry and are
// never deleted, so handles returned by GetCounter/GetGauge/GetHistogram
// may be cached indefinitely.
//
// Naming scheme (see DESIGN.md §8): dotted lowercase paths,
// `<subsystem>.<object>.<event>` — e.g. "lsh.tables.buckets_probed",
// "serve.scheduler.shed". Registering the same name twice returns the
// same metric.

#ifndef IPS_OBS_METRICS_H_
#define IPS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/table.h"
#include "util/thread_annotations.h"

namespace ips {

/// Ordered bag of labeled integer counts attached to one result object
/// (a query's stats, a join's accounting). This is the "namespaced
/// labels instead of bespoke stats fields" carrier: per-algorithm
/// extensions live here under their registry metric names (e.g.
/// "lsh.join.duplicate_pairs") rather than as dedicated struct members.
/// Not thread-safe; plain value type.
class MetricSet {
 public:
  /// Overwrites (or inserts) `key`.
  void Set(std::string_view key, std::uint64_t value);

  /// Adds `delta` to `key`, inserting it at 0 first.
  void Add(std::string_view key, std::uint64_t delta);

  /// Value of `key`, or 0 when absent.
  std::uint64_t Get(std::string_view key) const;

  bool Has(std::string_view key) const;
  bool empty() const { return items_.empty(); }

  /// Insertion-ordered (key, value) pairs.
  const std::vector<std::pair<std::string, std::uint64_t>>& items() const {
    return items_;
  }

 private:
  std::pair<std::string, std::uint64_t>* Find(std::string_view key);
  std::vector<std::pair<std::string, std::uint64_t>> items_;
};

/// Monotonic counter. Add() is safe from any thread and lock-free after
/// the thread's first touch of the metric.
class Counter {
 public:
  void Add(std::uint64_t delta);
  void Increment() { Add(1); }

  /// Merged value across all threads that ever touched the counter.
  std::uint64_t Value() const;

  /// Zeroes every thread's cell (test/bench epochs; racing writers may
  /// land on either side of the reset).
  void Reset();

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name);

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  std::atomic<std::uint64_t>* NewCell() IPS_EXCLUDES(mutex_);

  const std::string name_;
  const std::uint64_t id_;  // process-unique across all metric kinds
  mutable Mutex mutex_;     // guards cells_ growth and merge
  std::vector<std::unique_ptr<Cell>> cells_ IPS_GUARDED_BY(mutex_);
};

/// Last-write-wins instantaneous value (queue depth, cache size), with a
/// monotonic running maximum. Writes are relaxed atomics on one shared
/// cell — gauges are written at bookkeeping frequency, not in hot loops.
class Gauge {
 public:
  void Set(double value);
  /// Atomic increment (C++20 floating fetch_add).
  void Add(double delta);

  double Value() const { return value_.load(std::memory_order_relaxed); }
  double Max() const { return max_.load(std::memory_order_relaxed); }

  void Reset();

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name);

  std::string name_;
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// Log-scale histogram: 64 power-of-two buckets (plus an underflow
/// bucket for values < 2^-32) covering ~10 orders of magnitude each way.
/// Observe() uses the same per-thread cell design as Counter.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 64;

  void Observe(double value);

  std::uint64_t Count() const;
  double Sum() const;
  double Mean() const;
  /// Upper edge of the bucket containing quantile `q` in [0, 1]; an
  /// O(log-scale) estimate, exact enough for latency dashboards.
  double ApproxQuantile(double q) const;
  /// Merged per-bucket counts (index 0 = underflow).
  std::array<std::uint64_t, kNumBuckets> BucketCounts() const;
  /// Upper edge of bucket `b`: 2^(b - 32).
  static double BucketUpperEdge(std::size_t bucket);

  void Reset();

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name);

  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  Cell* NewCell() IPS_EXCLUDES(mutex_);

  const std::string name_;
  const std::uint64_t id_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Cell>> cells_ IPS_GUARDED_BY(mutex_);
};

/// Registry of named metrics. `Global()` is the process-wide instance
/// every production path reports into; tests may construct private
/// registries for isolation. Thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (leaked singleton: valid forever).
  static MetricsRegistry& Global();

  /// Returns the metric registered under `name`, creating it on first
  /// use. The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// JSON document {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with keys sorted for deterministic diffs.
  /// Failpoint: "obs/export" — an injected export failure must never
  /// affect recorded metrics or in-flight queries.
  [[nodiscard]] StatusOr<std::string> ExportJson() const;

  /// Human-readable dashboard: one row per metric, sorted by name.
  TablePrinter ToTable() const;

  /// Zeroes every registered metric (names stay registered).
  void Reset();

 private:
  // Guards the name maps only. Export/ToTable/Reset read family values
  // while holding it, so it is ordered before the per-metric mutexes
  // (cross-function nesting ipslint cannot observe lexically).
  mutable Mutex mutex_ IPS_ACQUIRED_BEFORE(Counter::mutex_, Histogram::mutex_);
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      IPS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      IPS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      IPS_GUARDED_BY(mutex_);
};

}  // namespace ips

#endif  // IPS_OBS_METRICS_H_
