#include "obs/trace.h"

#include <sstream>

#include "util/failpoint.h"

namespace ips {
namespace {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

// --- TraceSpan ---

TraceSpan::TraceSpan(Trace* trace, std::string_view name) : trace_(trace) {
  if (trace_ != nullptr) {
    index_ = trace_->OpenSpan(name);
  }
}

TraceSpan::~TraceSpan() {
  if (trace_ != nullptr) {
    trace_->CloseSpan(index_, timer_.Seconds());
  }
}

void TraceSpan::AddCount(std::string_view key, std::uint64_t delta) {
  if (trace_ == nullptr) return;
  trace_->AddCount(index_, key, delta);
}

// --- Trace ---

std::size_t Trace::OpenSpan(std::string_view name) {
  Span span;
  span.name = std::string(name);
  span.parent = open_.empty() ? kNoParent : open_.back();
  span.depth = open_.size();
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(span));
  open_.push_back(index);
  return index;
}

void Trace::CloseSpan(std::size_t index, double seconds) {
  spans_[index].seconds = seconds;
  // Spans close LIFO (RAII scoping), so `index` is the stack top.
  if (!open_.empty() && open_.back() == index) {
    open_.pop_back();
  }
}

std::size_t Trace::RecordSpan(std::string_view name, double seconds) {
  const std::size_t index = OpenSpan(name);
  CloseSpan(index, seconds);
  return index;
}

void Trace::AddCount(std::size_t span_index, std::string_view key,
                     std::uint64_t delta) {
  auto& counts = spans_[span_index].counts;
  for (auto& [existing, value] : counts) {
    if (existing == key) {
      value += delta;
      return;
    }
  }
  counts.emplace_back(std::string(key), delta);
}

const Trace::Span* Trace::FindSpan(std::string_view name) const {
  for (const Span& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::uint64_t Trace::TotalCount(std::string_view key) const {
  std::uint64_t total = 0;
  for (const Span& span : spans_) {
    for (const auto& [existing, value] : span.counts) {
      if (existing == key) total += value;
    }
  }
  return total;
}

std::string Trace::ToJson() const {
  // spans_ is in pre-order (parents precede children), so a single
  // forward pass can emit the nested structure with an explicit stack.
  std::ostringstream out;
  out << "{\"label\": \"" << JsonEscape(label_) << "\", \"spans\": [";
  std::vector<std::size_t> stack;  // indices of spans whose array is open
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    bool popped = false;
    while (!stack.empty() && span.parent != stack.back()) {
      out << "]}";
      stack.pop_back();
      popped = true;
    }
    // A span emitted right after another without pops is its first
    // child (spans_ is pre-order); pops mean a sibling follows a closed
    // subtree and needs a separator.
    if (popped || (stack.empty() && i > 0)) {
      out << ", ";
    }
    out << "{\"name\": \"" << JsonEscape(span.name)
        << "\", \"seconds\": " << span.seconds << ", \"counts\": {";
    bool first = true;
    for (const auto& [key, value] : span.counts) {
      out << (first ? "" : ", ") << "\"" << JsonEscape(key)
          << "\": " << value;
      first = false;
    }
    out << "}, \"children\": [";
    stack.push_back(i);
  }
  while (!stack.empty()) {
    out << "]}";
    stack.pop_back();
  }
  out << "]}";
  return out.str();
}

TablePrinter Trace::ToTable() const {
  TablePrinter table({"span", "seconds", "counts"});
  for (const Span& span : spans_) {
    std::string name(span.depth * 2, ' ');
    name += span.name;
    std::string counts;
    for (const auto& [key, value] : span.counts) {
      if (!counts.empty()) counts += " ";
      counts += key + "=" + Format(value);
    }
    table.AddRow({name, FormatSci(span.seconds, 3), counts});
  }
  return table;
}

// --- TraceRing ---

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

void TraceRing::Record(std::shared_ptr<const Trace> trace) {
  if (trace == nullptr) return;
  MutexLock lock(mutex_);
  ring_[(head_ + count_) % capacity_] = std::move(trace);
  if (count_ < capacity_) {
    ++count_;
  } else {
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<std::shared_ptr<const Trace>> TraceRing::Recent(
    std::size_t limit) const {
  MutexLock lock(mutex_);
  const std::size_t n =
      (limit == 0 || limit > count_) ? count_ : limit;
  std::vector<std::shared_ptr<const Trace>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Newest slot is head_ + count_ - 1; walk backwards.
    out.push_back(ring_[(head_ + count_ - 1 - i) % capacity_]);
  }
  return out;
}

std::size_t TraceRing::size() const {
  MutexLock lock(mutex_);
  return count_;
}

void TraceRing::Clear() {
  MutexLock lock(mutex_);
  for (auto& slot : ring_) slot.reset();
  head_ = 0;
  count_ = 0;
}

StatusOr<std::string> TraceRing::ExportJson(std::size_t limit) const {
  IPS_FAILPOINT("obs/export");
  const auto traces = Recent(limit);
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& trace : traces) {
    out << (first ? "" : ",") << "\n" << trace->ToJson();
    first = false;
  }
  out << (traces.empty() ? "" : "\n") << "]\n";
  return out.str();
}

}  // namespace ips
