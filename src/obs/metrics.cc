#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "util/failpoint.h"

namespace ips {
namespace {

// Process-unique metric ids. Thread-local caches key on the id, never
// the object address, so a stale cache entry for a destroyed metric
// (private test registry) can never alias a newly created one.
std::atomic<std::uint64_t> next_metric_id{1};

// Per-thread cache mapping metric id -> that thread's cell. The
// single-entry `last` cache makes the common pattern — one hot metric
// per loop — a compare plus a relaxed fetch_add.
struct TlsMetricCache {
  std::uint64_t last_id = 0;
  void* last_cell = nullptr;
  std::unordered_map<std::uint64_t, void*> cells;

  void* Lookup(std::uint64_t id) {
    if (last_id == id) return last_cell;
    const auto it = cells.find(id);
    if (it == cells.end()) return nullptr;
    last_id = id;
    last_cell = it->second;
    return it->second;
  }

  void Store(std::uint64_t id, void* cell) {
    cells[id] = cell;
    last_id = id;
    last_cell = cell;
  }
};

TlsMetricCache& Tls() {
  thread_local TlsMetricCache cache;
  return cache;
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

// --- MetricSet ---

std::pair<std::string, std::uint64_t>* MetricSet::Find(std::string_view key) {
  for (auto& item : items_) {
    if (item.first == key) return &item;
  }
  return nullptr;
}

void MetricSet::Set(std::string_view key, std::uint64_t value) {
  if (auto* item = Find(key)) {
    item->second = value;
    return;
  }
  items_.emplace_back(std::string(key), value);
}

void MetricSet::Add(std::string_view key, std::uint64_t delta) {
  if (auto* item = Find(key)) {
    item->second += delta;
    return;
  }
  items_.emplace_back(std::string(key), delta);
}

std::uint64_t MetricSet::Get(std::string_view key) const {
  for (const auto& item : items_) {
    if (item.first == key) return item.second;
  }
  return 0;
}

bool MetricSet::Has(std::string_view key) const {
  for (const auto& item : items_) {
    if (item.first == key) return true;
  }
  return false;
}

// --- Counter ---

Counter::Counter(std::string name)
    : name_(std::move(name)),
      id_(next_metric_id.fetch_add(1, std::memory_order_relaxed)) {}

std::atomic<std::uint64_t>* Counter::NewCell() {
  MutexLock lock(mutex_);
  cells_.push_back(std::make_unique<Cell>());
  return &cells_.back()->value;
}

void Counter::Add(std::uint64_t delta) {
  TlsMetricCache& tls = Tls();
  void* cached = tls.Lookup(id_);
  if (cached == nullptr) {
    cached = NewCell();
    tls.Store(id_, cached);
  }
  static_cast<std::atomic<std::uint64_t>*>(cached)->fetch_add(
      delta, std::memory_order_relaxed);
}

std::uint64_t Counter::Value() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  MutexLock lock(mutex_);
  for (const auto& cell : cells_) {
    cell->value.store(0, std::memory_order_relaxed);
  }
}

// --- Gauge ---

Gauge::Gauge(std::string name) : name_(std::move(name)) {}

void Gauge::Set(double value) {
  value_.store(value, std::memory_order_relaxed);
  AtomicMaxDouble(&max_, value);
}

void Gauge::Add(double delta) {
  const double now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  AtomicMaxDouble(&max_, now);
}

void Gauge::Reset() {
  value_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// --- Histogram ---

Histogram::Histogram(std::string name)
    : name_(std::move(name)),
      id_(next_metric_id.fetch_add(1, std::memory_order_relaxed)) {}

Histogram::Cell* Histogram::NewCell() {
  MutexLock lock(mutex_);
  cells_.push_back(std::make_unique<Cell>());
  return cells_.back().get();
}

double Histogram::BucketUpperEdge(std::size_t bucket) {
  return std::ldexp(1.0, static_cast<int>(bucket) - 32);
}

void Histogram::Observe(double value) {
  TlsMetricCache& tls = Tls();
  void* cached = tls.Lookup(id_);
  if (cached == nullptr) {
    cached = NewCell();
    tls.Store(id_, cached);
  }
  Cell* cell = static_cast<Cell*>(cached);
  std::size_t bucket = 0;
  if (std::isfinite(value) && value > 0.0) {
    int exponent = 0;
    std::frexp(value, &exponent);
    // frexp: value = m * 2^e with m in [0.5, 1) -> bucket upper edge 2^e.
    bucket = static_cast<std::size_t>(
        std::clamp(exponent + 32, 0, static_cast<int>(kNumBuckets) - 1));
  }
  cell->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cell->count.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) {
    cell->sum.fetch_add(value, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::Count() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  MutexLock lock(mutex_);
  double total = 0.0;
  for (const auto& cell : cells_) {
    total += cell->sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Mean() const {
  const std::uint64_t count = Count();
  return count == 0 ? 0.0 : Sum() / static_cast<double>(count);
}

std::array<std::uint64_t, Histogram::kNumBuckets> Histogram::BucketCounts()
    const {
  std::array<std::uint64_t, kNumBuckets> merged{};
  MutexLock lock(mutex_);
  for (const auto& cell : cells_) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      merged[b] += cell->buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::ApproxQuantile(double q) const {
  const auto counts = BucketCounts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) return BucketUpperEdge(b);
  }
  return BucketUpperEdge(kNumBuckets - 1);
}

void Histogram::Reset() {
  MutexLock lock(mutex_);
  for (const auto& cell : cells_) {
    for (auto& bucket : cell->buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    cell->count.store(0, std::memory_order_relaxed);
    cell->sum.store(0.0, std::memory_order_relaxed);
  }
}

// --- MetricsRegistry ---

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: metric handles cached by production code stay
  // valid through process exit, in any destruction order.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  auto created =
      std::unique_ptr<Counter>(new Counter(std::string(name)));
  Counter* raw = created.get();
  counters_.emplace(std::string(name), std::move(created));
  return raw;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  auto created = std::unique_ptr<Gauge>(new Gauge(std::string(name)));
  Gauge* raw = created.get();
  gauges_.emplace(std::string(name), std::move(created));
  return raw;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  auto created =
      std::unique_ptr<Histogram>(new Histogram(std::string(name)));
  Histogram* raw = created.get();
  histograms_.emplace(std::string(name), std::move(created));
  return raw;
}

StatusOr<std::string> MetricsRegistry::ExportJson() const {
  IPS_FAILPOINT("obs/export");
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  {
    MutexLock lock(mutex_);
    bool first = true;
    for (const auto& [name, counter] : counters_) {
      out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
          << "\": " << counter->Value();
      first = false;
    }
    out << (counters_.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, gauge] : gauges_) {
      out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
          << "\": {\"value\": " << JsonNumber(gauge->Value())
          << ", \"max\": " << JsonNumber(gauge->Max()) << "}";
      first = false;
    }
    out << (gauges_.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
      out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
          << "\": {\"count\": " << histogram->Count()
          << ", \"sum\": " << JsonNumber(histogram->Sum())
          << ", \"mean\": " << JsonNumber(histogram->Mean())
          << ", \"p50\": " << JsonNumber(histogram->ApproxQuantile(0.5))
          << ", \"p99\": " << JsonNumber(histogram->ApproxQuantile(0.99))
          << "}";
      first = false;
    }
    out << (histograms_.empty() ? "" : "\n  ") << "}\n}\n";
  }
  return out.str();
}

TablePrinter MetricsRegistry::ToTable() const {
  TablePrinter table({"metric", "type", "value"});
  // Holds the registry lock across Counter::Value()/Histogram::Count(),
  // which take the per-metric mutexes: the IPS_ACQUIRED_BEFORE order
  // declared on mutex_ (metrics.h). Never export under a metric lock.
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    table.AddRow({name, "counter", Format(counter->Value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    table.AddRow({name, "gauge",
                  Format(gauge->Value()) + " (max " +
                      Format(gauge->Max()) + ")"});
  }
  for (const auto& [name, histogram] : histograms_) {
    table.AddRow({name, "histogram",
                  "n=" + Format(histogram->Count()) +
                      " mean=" + FormatFixed(histogram->Mean(), 3) +
                      " p99<=" +
                      FormatFixed(histogram->ApproxQuantile(0.99), 3)});
  }
  return table;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace ips
