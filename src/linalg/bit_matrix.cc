#include "linalg/bit_matrix.h"

#include <bit>

namespace ips {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      words_(rows * words_per_row_, 0) {}

std::size_t BitMatrix::RowPopcount(std::size_t i) const {
  std::size_t count = 0;
  for (std::uint64_t word : WordsFor(i)) count += std::popcount(word);
  return count;
}

std::size_t BitMatrix::DotRows(std::size_t i, const BitMatrix& other,
                               std::size_t j) const {
  IPS_CHECK_EQ(cols_, other.cols_);
  const std::span<const std::uint64_t> a = WordsFor(i);
  const std::span<const std::uint64_t> b = other.WordsFor(j);
  std::size_t count = 0;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    count += std::popcount(a[w] & b[w]);
  }
  return count;
}

bool BitMatrix::OrthogonalRows(std::size_t i, const BitMatrix& other,
                               std::size_t j) const {
  IPS_CHECK_EQ(cols_, other.cols_);
  const std::span<const std::uint64_t> a = WordsFor(i);
  const std::span<const std::uint64_t> b = other.WordsFor(j);
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    if ((a[w] & b[w]) != 0) return false;
  }
  return true;
}

std::vector<double> BitMatrix::RowAsDense(std::size_t i) const {
  std::vector<double> row(cols_, 0.0);
  for (std::size_t j = 0; j < cols_; ++j) {
    if (Get(i, j)) row[j] = 1.0;
  }
  return row;
}

Matrix BitMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      if (Get(i, j)) dense.At(i, j) = 1.0;
    }
  }
  return dense;
}

BitMatrix BitMatrix::FromDense(const Matrix& dense) {
  BitMatrix result(dense.rows(), dense.cols());
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense.At(i, j);
      IPS_CHECK(v == 0.0 || v == 1.0) << "entry not binary:" << v;
      if (v == 1.0) result.Set(i, j, true);
    }
  }
  return result;
}

}  // namespace ips
