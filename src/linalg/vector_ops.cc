#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ips {

double Dot(std::span<const double> x, std::span<const double> y) {
  IPS_DCHECK(x.size() == y.size());
  const std::size_t n = x.size();
  // Four accumulators give the compiler room to vectorize without
  // reassociating a single serial chain.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += x[i] * y[i];
    acc1 += x[i + 1] * y[i + 1];
    acc2 += x[i + 2] * y[i + 2];
    acc3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) acc0 += x[i] * y[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

double SquaredNorm(std::span<const double> x) { return Dot(x, x); }

double Norm(std::span<const double> x) { return std::sqrt(SquaredNorm(x)); }

double LpNorm(std::span<const double> x, double p) {
  IPS_CHECK_GE(p, 1.0);
  double sum = 0.0;
  for (double v : x) sum += std::pow(std::abs(v), p);
  return std::pow(sum, 1.0 / p);
}

double LInfNorm(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double SquaredDistance(std::span<const double> x, std::span<const double> y) {
  IPS_DCHECK(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double diff = x[i] - y[i];
    sum += diff * diff;
  }
  return sum;
}

void ScaleInPlace(std::span<double> x, double factor) {
  for (double& v : x) v *= factor;
}

void NormalizeInPlace(std::span<double> x) {
  const double norm = Norm(x);
  if (norm > 0.0) ScaleInPlace(x, 1.0 / norm);
}

std::vector<double> Normalized(std::span<const double> x) {
  std::vector<double> result(x.begin(), x.end());
  NormalizeInPlace(result);
  return result;
}

double CosineSimilarity(std::span<const double> x, std::span<const double> y) {
  const double nx = Norm(x);
  const double ny = Norm(y);
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return Dot(x, y) / (nx * ny);
}

}  // namespace ips
