// AVX2+FMA kernel table (see kernels.h for the dispatch contract).
// Built with per-function target attributes so the translation unit
// compiles under the project's portable flags; every function here is
// only ever called after Avx2Available() said yes.

#include "linalg/kernels.h"

#include "util/check.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

namespace ips {
namespace kernels {
namespace {

#define IPS_AVX2 __attribute__((target("avx2,fma")))

// (lane0 + lane2) + (lane1 + lane3); FMA contraction already separates
// this path from the scalar one by rounding, so the exact reduction
// tree is free to be the cheapest one.
IPS_AVX2 inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

IPS_AVX2 double DotAvx2(const double* x, const double* y, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                           _mm256_loadu_pd(y + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 8),
                           _mm256_loadu_pd(y + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 12),
                           _mm256_loadu_pd(y + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                           _mm256_loadu_pd(y + i), acc0);
  }
  double total = HorizontalSum(
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

IPS_AVX2 void MatVecAvx2(const double* data, std::size_t rows,
                         std::size_t cols, const double* q, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = DotAvx2(data + r * cols, q, cols);
  }
}

// The register-blocked heart of the tiled scorer: two data rows against
// four queries. Each 4-wide column step loads the two row vectors once
// and reuses them across all four queries (6 loads feeding 8 FMAs),
// which is what lifts the batch path past the per-query memory wall.
IPS_AVX2 void Score2x4(const double* row0, const double* row1,
                       const double* q0, const double* q1, const double* q2,
                       const double* q3, std::size_t cols, double* out0,
                       double* out1) {
  __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
  __m256d a02 = _mm256_setzero_pd(), a03 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
  __m256d a12 = _mm256_setzero_pd(), a13 = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    const __m256d va = _mm256_loadu_pd(row0 + j);
    const __m256d vb = _mm256_loadu_pd(row1 + j);
    __m256d vq = _mm256_loadu_pd(q0 + j);
    a00 = _mm256_fmadd_pd(va, vq, a00);
    a10 = _mm256_fmadd_pd(vb, vq, a10);
    vq = _mm256_loadu_pd(q1 + j);
    a01 = _mm256_fmadd_pd(va, vq, a01);
    a11 = _mm256_fmadd_pd(vb, vq, a11);
    vq = _mm256_loadu_pd(q2 + j);
    a02 = _mm256_fmadd_pd(va, vq, a02);
    a12 = _mm256_fmadd_pd(vb, vq, a12);
    vq = _mm256_loadu_pd(q3 + j);
    a03 = _mm256_fmadd_pd(va, vq, a03);
    a13 = _mm256_fmadd_pd(vb, vq, a13);
  }
  double s00 = HorizontalSum(a00), s01 = HorizontalSum(a01);
  double s02 = HorizontalSum(a02), s03 = HorizontalSum(a03);
  double s10 = HorizontalSum(a10), s11 = HorizontalSum(a11);
  double s12 = HorizontalSum(a12), s13 = HorizontalSum(a13);
  for (; j < cols; ++j) {
    const double va = row0[j], vb = row1[j];
    s00 += va * q0[j];
    s01 += va * q1[j];
    s02 += va * q2[j];
    s03 += va * q3[j];
    s10 += vb * q0[j];
    s11 += vb * q1[j];
    s12 += vb * q2[j];
    s13 += vb * q3[j];
  }
  out0[0] = s00;
  out0[1] = s01;
  out0[2] = s02;
  out0[3] = s03;
  out1[0] = s10;
  out1[1] = s11;
  out1[2] = s12;
  out1[3] = s13;
}

IPS_AVX2 void ScoreBlockAvx2(const double* data, std::size_t rows,
                             std::size_t cols, const double* queries,
                             std::size_t num_q, std::size_t q_stride,
                             double* out, std::size_t out_stride) {
  std::size_t qi = 0;
  for (; qi + 4 <= num_q; qi += 4) {
    const double* q0 = queries + qi * q_stride;
    const double* q1 = q0 + q_stride;
    const double* q2 = q1 + q_stride;
    const double* q3 = q2 + q_stride;
    std::size_t r = 0;
    for (; r + 2 <= rows; r += 2) {
      double s0[4], s1[4];
      Score2x4(data + r * cols, data + (r + 1) * cols, q0, q1, q2, q3,
               cols, s0, s1);
      for (std::size_t t = 0; t < 4; ++t) {
        out[(qi + t) * out_stride + r] = s0[t];
        out[(qi + t) * out_stride + r + 1] = s1[t];
      }
    }
    if (r < rows) {
      const double* row = data + r * cols;
      out[qi * out_stride + r] = DotAvx2(row, q0, cols);
      out[(qi + 1) * out_stride + r] = DotAvx2(row, q1, cols);
      out[(qi + 2) * out_stride + r] = DotAvx2(row, q2, cols);
      out[(qi + 3) * out_stride + r] = DotAvx2(row, q3, cols);
    }
  }
  for (; qi < num_q; ++qi) {
    const double* q = queries + qi * q_stride;
    double* row_out = out + qi * out_stride;
    for (std::size_t r = 0; r < rows; ++r) {
      row_out[r] = DotAvx2(data + r * cols, q, cols);
    }
  }
}

// int8 fixed-point dot via the maddubs pipeline. maddubs wants one
// unsigned and one signed operand, so rewrite
//   sum x_i * y_i  =  sum |x_i| * (sign(x_i) * y_i)
// with abs_epi8 / sign_epi8. With codes clamped to [-127, 127] (the
// KernelOps contract) the i8 negation in sign_epi8 cannot overflow and
// each i16 pair sum is at most 2 * 127 * 127 = 32258 < 32767, so the
// pipeline is exact — scalar and AVX2 agree bitwise.
IPS_AVX2 inline std::int32_t HorizontalSumI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i sum = _mm_add_epi32(lo, hi);
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(sum);
}

IPS_AVX2 std::int32_t DotI8Avx2(const std::int8_t* x, const std::int8_t* y,
                                std::size_t n) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i vx0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(y + i));
    const __m256i vx1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(x + i + 32));
    const __m256i vy1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(y + i + 32));
    const __m256i p0 = _mm256_maddubs_epi16(_mm256_abs_epi8(vx0),
                                            _mm256_sign_epi8(vy0, vx0));
    const __m256i p1 = _mm256_maddubs_epi16(_mm256_abs_epi8(vx1),
                                            _mm256_sign_epi8(vy1, vx1));
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(p0, ones));
    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(p1, ones));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i vx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(y + i));
    const __m256i p = _mm256_maddubs_epi16(_mm256_abs_epi8(vx),
                                           _mm256_sign_epi8(vy, vx));
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(p, ones));
  }
  std::int32_t total = HorizontalSumI32(_mm256_add_epi32(acc0, acc1));
  for (; i < n; ++i) {
    total += static_cast<std::int32_t>(x[i]) * y[i];
  }
  return total;
}

IPS_AVX2 void ScoreBlockI8Avx2(const std::int8_t* codes, std::size_t rows,
                               std::size_t cols, const std::int8_t* q,
                               std::int32_t* out) {
  // One byte per entry keeps this pass memory-light; per-row dots are
  // enough to saturate the load ports, no register blocking needed.
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = DotI8Avx2(codes + r * cols, q, cols);
  }
}

#undef IPS_AVX2

}  // namespace

const KernelOps& Avx2Ops() {
  IPS_CHECK(Avx2Available())
      << "Avx2Ops() requested on a CPU without AVX2+FMA";
  static const KernelOps ops = {"avx2",          &DotAvx2,
                                &MatVecAvx2,     &ScoreBlockAvx2,
                                &DotI8Avx2,      &ScoreBlockI8Avx2};
  return ops;
}

}  // namespace kernels
}  // namespace ips

#else  // non-x86: the AVX2 table must not be reachable.

namespace ips {
namespace kernels {

const KernelOps& Avx2Ops() {
  IPS_CHECK(false) << "Avx2Ops() is unavailable on this architecture";
  return ScalarOps();  // unreachable
}

}  // namespace kernels
}  // namespace ips

#endif
