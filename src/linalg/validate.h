// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Status-returning validation of user-supplied matrices and vectors.
// Everything reachable from user input (datasets, query batches, index
// parameters) is validated through these helpers and rejected with
// kInvalidArgument / kFailedPrecondition; IPS_CHECK stays reserved for
// internal invariants. Messages name the offending row/column so a bad
// cell in a million-point load is findable.

#ifndef IPS_LINALG_VALIDATE_H_
#define IPS_LINALG_VALIDATE_H_

#include <span>
#include <string_view>

#include "linalg/matrix.h"
#include "util/status.h"

namespace ips {

/// Non-OK when `m` has no rows or no columns. `what` names the operand
/// in the message ("data", "queries", ...).
Status ValidateNonEmpty(const Matrix& m, std::string_view what);

/// Non-OK when any entry of `m` is NaN or infinite; names (row, col).
Status ValidateFinite(const Matrix& m, std::string_view what);

/// Non-OK when any entry of `v` is NaN or infinite; names the index.
Status ValidateVectorFinite(std::span<const double> v,
                            std::string_view what);

/// Non-OK when `m.cols() != cols`.
Status ValidateDims(const Matrix& m, std::size_t cols,
                    std::string_view what);

/// Non-OK when `v.size() != dim`.
Status ValidateVectorDims(std::span<const double> v, std::size_t dim,
                          std::string_view what);

/// Non-OK (kFailedPrecondition) when some row of `m` has Euclidean norm
/// above `limit` (with a small relative tolerance); names the row. The
/// paper's embeddings (Sections 4.1-4.2) require data in the unit ball.
Status ValidateMaxNorm(const Matrix& m, double limit, std::string_view what);

}  // namespace ips

#endif  // IPS_LINALG_VALIDATE_H_
