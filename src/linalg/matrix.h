// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Dense row-major matrix of doubles: the basic container for point sets
// P, Q in R^d throughout the library. Rows are points.
//
// A Matrix is either *owning* (the default: backed by its own vector)
// or a *view* over external row-major storage (Matrix::View), used by
// the storage layer to serve queries straight off an mmap'ed snapshot
// without copying. Views are read-only: the mutating accessors CHECK.
// Copying a view copies the pointer, not the bytes — the external
// storage (e.g. storage::MappedSnapshot) must outlive every copy.

#ifndef IPS_LINALG_MATRIX_H_
#define IPS_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"

namespace ips {

/// Dense row-major matrix; each row is one d-dimensional point.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a zero-initialized `rows` x `cols` matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a matrix from row-major `data`; data.size() must equal
  /// rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    IPS_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  /// A read-only view over external row-major storage of rows*cols
  /// doubles. No bytes are copied; `data` must stay valid (and
  /// unchanged) for the lifetime of the view and every copy of it.
  static Matrix View(const double* data, std::size_t rows,
                     std::size_t cols) {
    IPS_CHECK(data != nullptr || rows * cols == 0);
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.view_ = data;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// True for a non-owning view (Matrix::View); mutation is forbidden.
  bool is_view() const { return view_ != nullptr; }

  /// Row-major storage base pointer, owning or view.
  const double* raw() const { return view_ != nullptr ? view_ : data_.data(); }

  /// Mutable view of row `i` (owning matrices only).
  std::span<double> Row(std::size_t i) {
    IPS_DCHECK(i < rows_);
    IPS_CHECK(view_ == nullptr) << "mutating a Matrix::View";
    return {data_.data() + i * cols_, cols_};
  }

  /// Read-only view of row `i`.
  std::span<const double> Row(std::size_t i) const {
    IPS_DCHECK(i < rows_);
    return {raw() + i * cols_, cols_};
  }

  double& At(std::size_t i, std::size_t j) {
    IPS_DCHECK(i < rows_ && j < cols_);
    IPS_CHECK(view_ == nullptr) << "mutating a Matrix::View";
    return data_[i * cols_ + j];
  }

  double At(std::size_t i, std::size_t j) const {
    IPS_DCHECK(i < rows_ && j < cols_);
    return raw()[i * cols_ + j];
  }

  /// Owning storage (CHECKs on a view; prefer raw() for reads).
  const std::vector<double>& data() const {
    IPS_CHECK(view_ == nullptr) << "Matrix::View has no owned storage";
    return data_;
  }
  std::vector<double>& data() {
    IPS_CHECK(view_ == nullptr) << "Matrix::View has no owned storage";
    return data_;
  }

  /// Appends `row` (must have cols() entries; sets cols on first append).
  /// Owning matrices only.
  void AppendRow(std::span<const double> row);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
  // Non-null in view mode; rows_*cols_ doubles of external storage.
  const double* view_ = nullptr;
};

}  // namespace ips

#endif  // IPS_LINALG_MATRIX_H_
