// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Dense row-major matrix of doubles: the basic container for point sets
// P, Q in R^d throughout the library. Rows are points.

#ifndef IPS_LINALG_MATRIX_H_
#define IPS_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"

namespace ips {

/// Dense row-major matrix; each row is one d-dimensional point.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a zero-initialized `rows` x `cols` matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a matrix from row-major `data`; data.size() must equal
  /// rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    IPS_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// Mutable view of row `i`.
  std::span<double> Row(std::size_t i) {
    IPS_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  /// Read-only view of row `i`.
  std::span<const double> Row(std::size_t i) const {
    IPS_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  double& At(std::size_t i, std::size_t j) {
    IPS_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  double At(std::size_t i, std::size_t j) const {
    IPS_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Appends `row` (must have cols() entries; sets cols on first append).
  void AppendRow(std::span<const double> row);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ips

#endif  // IPS_LINALG_MATRIX_H_
