#include "linalg/validate.h"

#include <cmath>
#include <string>

namespace ips {
namespace {

std::string Name(std::string_view what) { return std::string(what); }

}  // namespace

Status ValidateNonEmpty(const Matrix& m, std::string_view what) {
  if (m.rows() == 0 || m.cols() == 0) {
    return Status::InvalidArgument(Name(what) + " is empty (" +
                                   std::to_string(m.rows()) + "x" +
                                   std::to_string(m.cols()) + ")");
  }
  return Status::Ok();
}

Status ValidateFinite(const Matrix& m, std::string_view what) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const std::span<const double> row = m.Row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (!std::isfinite(row[j])) {
        return Status::InvalidArgument(
            Name(what) + " has non-finite value " + std::to_string(row[j]) +
            " at row " + std::to_string(i) + ", column " +
            std::to_string(j));
      }
    }
  }
  return Status::Ok();
}

Status ValidateVectorFinite(std::span<const double> v,
                            std::string_view what) {
  for (std::size_t j = 0; j < v.size(); ++j) {
    if (!std::isfinite(v[j])) {
      return Status::InvalidArgument(Name(what) + " has non-finite value " +
                                     std::to_string(v[j]) + " at index " +
                                     std::to_string(j));
    }
  }
  return Status::Ok();
}

Status ValidateDims(const Matrix& m, std::size_t cols,
                    std::string_view what) {
  if (m.cols() != cols) {
    return Status::InvalidArgument(
        Name(what) + " has " + std::to_string(m.cols()) +
        " columns, expected " + std::to_string(cols));
  }
  return Status::Ok();
}

Status ValidateVectorDims(std::span<const double> v, std::size_t dim,
                          std::string_view what) {
  if (v.size() != dim) {
    return Status::InvalidArgument(Name(what) + " has dimension " +
                                   std::to_string(v.size()) +
                                   ", expected " + std::to_string(dim));
  }
  return Status::Ok();
}

Status ValidateMaxNorm(const Matrix& m, double limit,
                       std::string_view what) {
  const double tolerance = limit * 1e-9 + 1e-12;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const std::span<const double> row = m.Row(i);
    double sum = 0.0;
    for (double x : row) sum += x * x;
    const double norm = std::sqrt(sum);
    if (norm > limit + tolerance) {
      return Status::FailedPrecondition(
          Name(what) + " row " + std::to_string(i) + " has norm " +
          std::to_string(norm) + " > " + std::to_string(limit) +
          " (the embedding requires vectors in the radius-" +
          std::to_string(limit) + " ball)");
    }
  }
  return Status::Ok();
}

}  // namespace ips
