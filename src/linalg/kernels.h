// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// linalg::kernels — the one dispatched home of every dense inner-product
// primitive in the tree (DESIGN.md §10). The former free-function zoo of
// vector_ops.h lives here now, plus the batch kernels the BatchQuery
// paths are built on:
//
//   Dot / SquaredNorm / Norm / ...     scalar vector ops (dispatched);
//   MatVec                             one query vs. every data row;
//   GatherScores                       one query vs. a gathered row set
//                                      (tree leaves, LSH candidates);
//   BlockTopK                          tiled many-vs-many scoring that
//                                      writes straight into per-query
//                                      top-k heaps (no n*m score matrix);
//   DotI8 / ScoreBlockI8               int8 fixed-point inner products
//                                      (the estimate pass of the
//                                      two-stage quantized scorer);
//   AndPopcountMany / SignDotMany      batched popcount inner products
//                                      over packed {0,1} / {-1,+1} rows.
//
// Dispatch: an AVX2+FMA implementation and a portable scalar fallback
// are selected once at startup via cpuid (GCC/Clang builtins). Setting
// the environment variable IPS_FORCE_SCALAR=1 pins the scalar path (the
// CI fallback leg and the parity tests use this). Both implementations
// are exported through KernelOps so tests can compare them directly.
//
// Numerics: the scalar path accumulates into four interleaved partial
// sums; the AVX2 path keeps the same lane grouping but contracts with
// FMA, so the two agree to rounding (ULP-scale), not bitwise. Anything
// that consumes both must compare with a tolerance (tests/kernels_test).
// The int8 kernels are integer-exact: scalar and AVX2 produce identical
// int32 results for codes in [-127, 127] (tests/quant_test compares
// them with EXPECT_EQ, no tolerance).

#ifndef IPS_LINALG_KERNELS_H_
#define IPS_LINALG_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "util/check.h"

namespace ips {
namespace kernels {

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

/// True when the CPU supports AVX2 and FMA (always false off x86).
bool Avx2Available();

/// True when IPS_FORCE_SCALAR is set to a non-empty value other than
/// "0" in the environment (read once, at first use).
bool ForceScalar();

/// Raw kernel table: one implementation of every dispatched primitive.
/// Exposed so the parity suite and bench_kernels can pit the scalar and
/// AVX2 implementations against each other explicitly; everything else
/// goes through the convenience wrappers below, which use ActiveOps().
struct KernelOps {
  const char* name;  // "scalar" or "avx2"

  /// <x, y> over n entries.
  double (*dot)(const double* x, const double* y, std::size_t n);

  /// out[r] = <data + r*cols, q> for r in [0, rows).
  void (*matvec)(const double* data, std::size_t rows, std::size_t cols,
                 const double* q, double* out);

  /// Tile scorer: out[qi * out_stride + r] = <row r, query qi> for
  /// r in [0, rows), qi in [0, num_q); rows are contiguous at
  /// data (leading dimension cols), queries contiguous at queries
  /// (leading dimension q_stride). The register-blocked heart of
  /// BlockTopK.
  void (*score_block)(const double* data, std::size_t rows,
                      std::size_t cols, const double* queries,
                      std::size_t num_q, std::size_t q_stride, double* out,
                      std::size_t out_stride);

  /// Fixed-point <x, y> over n int8 codes, accumulated in int32.
  /// Contract: every code lies in [-127, 127] (the quantizer clamps to
  /// that range; -128 is excluded so the AVX2 abs/sign/maddubs pipeline
  /// can neither overflow the i8 negation nor saturate the i16 pair
  /// sums) and n <= 2^17, so the exact sum fits int32. Under that
  /// contract the scalar and AVX2 implementations are bitwise
  /// identical.
  std::int32_t (*dot_i8)(const std::int8_t* x, const std::int8_t* y,
                         std::size_t n);

  /// out[r] = dot_i8(codes + r * cols, q) for r in [0, rows): the
  /// quantized estimate pass of the two-stage scorer — one int8 query
  /// against a contiguous block of int8 code rows.
  void (*score_block_i8)(const std::int8_t* codes, std::size_t rows,
                         std::size_t cols, const std::int8_t* q,
                         std::int32_t* out);
};

/// The portable fallback (available everywhere).
const KernelOps& ScalarOps();

/// The AVX2+FMA implementation; call only when Avx2Available().
const KernelOps& Avx2Ops();

/// The table selected at startup: Avx2Ops() when the CPU has AVX2+FMA
/// and IPS_FORCE_SCALAR is not set, else ScalarOps().
const KernelOps& ActiveOps();

/// Name of the active implementation ("avx2" / "scalar"), for logs,
/// bench JSON, and the startup banner of examples.
const char* ActiveIsaName();

// ---------------------------------------------------------------------
// Dispatched vector ops (the former linalg/vector_ops.h surface).
// ---------------------------------------------------------------------

/// Inner product <x, y>. Requires x.size() == y.size().
inline double Dot(std::span<const double> x, std::span<const double> y) {
  IPS_DCHECK(x.size() == y.size());
  return ActiveOps().dot(x.data(), y.data(), x.size());
}

/// Squared Euclidean norm ||x||^2.
inline double SquaredNorm(std::span<const double> x) { return Dot(x, x); }

/// Euclidean norm ||x||.
double Norm(std::span<const double> x);

/// ell_p norm for p >= 1; p may be +infinity via LInfNorm.
double LpNorm(std::span<const double> x, double p);

/// max_i |x_i|.
double LInfNorm(std::span<const double> x);

/// Squared Euclidean distance ||x - y||^2.
double SquaredDistance(std::span<const double> x, std::span<const double> y);

/// Scales x in place by `factor`.
void ScaleInPlace(std::span<double> x, double factor);

/// Normalizes x in place to unit Euclidean norm; no-op on the zero vector.
void NormalizeInPlace(std::span<double> x);

/// Returns x / ||x|| (copy); returns x unchanged if ||x|| == 0.
std::vector<double> Normalized(std::span<const double> x);

/// Cosine similarity <x,y>/(||x|| ||y||); 0 when either norm is 0.
double CosineSimilarity(std::span<const double> x, std::span<const double> y);

// ---------------------------------------------------------------------
// Batch kernels.
// ---------------------------------------------------------------------

/// out[r] = <data.Row(r), q>. Requires q.size() == data.cols() and
/// out.size() == data.rows().
void MatVec(const Matrix& data, std::span<const double> q,
            std::span<double> out);

/// out[j] = <data.Row(indices[j]), q>: the gathered-row scorer behind
/// tree leaf scans and LSH candidate verification. Requires
/// out.size() == indices.size().
void GatherScores(const Matrix& data, std::span<const std::size_t> indices,
                  std::span<const double> q, std::span<double> out);

/// One scored row index (linalg-level mirror of core::SearchMatch,
/// which this layer cannot see).
struct ScoredIndex {
  std::size_t index = 0;
  double value = 0.0;
};

/// Fixed-capacity top-k accumulator with the project-wide deterministic
/// ordering: score descending, then index ascending. Push is O(log k)
/// only when the candidate beats the current k-th best; the common
/// reject is one compare.
class TopKHeap {
 public:
  explicit TopKHeap(std::size_t k) : k_(k) { IPS_DCHECK(k >= 1); }

  /// True when (value, index) would enter the current top-k.
  bool Accepts(double value, std::size_t index) const {
    if (heap_.size() < k_) return true;
    return Worse(heap_.front(), {index, value});
  }

  void Push(std::size_t index, double value);

  /// Values strictly below this cannot enter the heap (-infinity while
  /// under capacity). Lets tight scoring loops keep the reject
  /// threshold in a register instead of re-reading the heap per
  /// candidate; refresh after every Push.
  double Floor() const {
    if (heap_.size() < k_) return -std::numeric_limits<double>::infinity();
    return heap_.front().value;
  }

  std::size_t size() const { return heap_.size(); }
  std::size_t k() const { return k_; }

  /// The accumulated top-k, score descending then index ascending.
  /// Leaves the heap empty.
  std::vector<ScoredIndex> TakeSorted();

 private:
  // a strictly worse than b under (value desc, index asc).
  static bool Worse(const ScoredIndex& a, const ScoredIndex& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.index > b.index;
  }
  static bool HeapGreater(const ScoredIndex& a, const ScoredIndex& b) {
    return Worse(b, a);
  }

  std::size_t k_;
  // Min-heap on (value, inverted index): front() is the current k-th
  // best.
  std::vector<ScoredIndex> heap_;
};

/// Tiled many-vs-many scorer: for every query row qi of `queries` and
/// every data row r in [row_begin, row_end), pushes
/// (r + index_offset, score) into heaps[qi], where the score is
/// <data.Row(r), queries.Row(qi)>, made absolute when `absolute`.
/// Cache-blocked GEMM-style: a tile of data rows is reused across a
/// block of queries, scores land in a stack scratch and go straight
/// into the per-query heaps — the n*m score matrix is never
/// materialized. Requires heaps.size() == queries.rows() and matching
/// dimensions.
void BlockTopK(const Matrix& data, std::size_t row_begin,
               std::size_t row_end, const Matrix& queries, bool absolute,
               std::span<TopKHeap> heaps, std::size_t index_offset = 0);

/// Convenience: BlockTopK over every data row.
inline void BlockTopK(const Matrix& data, const Matrix& queries,
                      bool absolute, std::span<TopKHeap> heaps) {
  BlockTopK(data, 0, data.rows(), queries, absolute, heaps);
}

// ---------------------------------------------------------------------
// Dispatched int8 fixed-point kernels.
// ---------------------------------------------------------------------

/// Integer inner product of two int8 code vectors (see
/// KernelOps::dot_i8 for the [-127, 127] / n <= 2^17 contract).
inline std::int32_t DotI8(std::span<const std::int8_t> x,
                          std::span<const std::int8_t> y) {
  IPS_DCHECK(x.size() == y.size());
  return ActiveOps().dot_i8(x.data(), y.data(), x.size());
}

/// out[r] = <codes row r, q> in int32 for `rows` contiguous code rows
/// of `cols` int8 entries each.
inline void ScoreBlockI8(const std::int8_t* codes, std::size_t rows,
                         std::size_t cols, const std::int8_t* q,
                         std::int32_t* out) {
  ActiveOps().score_block_i8(codes, rows, cols, q, out);
}

// ---------------------------------------------------------------------
// Batched popcount inner products (packed {0,1} / {-1,+1} rows).
// ---------------------------------------------------------------------
// ISA note: these are word-parallel popcount loops (4-way unrolled
// __builtin_popcountll); AVX2 has no vector popcount, so the same
// implementation serves both dispatch tables and the batch win is the
// amortized query-row load and loop overhead.

/// out[r] = popcount(q AND row r) for `nrows` packed rows of
/// `words_per_row` 64-bit words each: the {0,1} inner product of one
/// query against many BitMatrix rows.
void AndPopcountMany(const std::uint64_t* q, const std::uint64_t* rows,
                     std::size_t words_per_row, std::size_t nrows,
                     std::uint32_t* out);

/// out[r] = cols - 2 * popcount(q XOR row r): the {-1,+1} inner product
/// of one query against many SignMatrix rows (bit set = +1). Tail bits
/// beyond `cols` must be zero in q and every row.
void SignDotMany(const std::uint64_t* q, const std::uint64_t* rows,
                 std::size_t words_per_row, std::size_t nrows,
                 std::size_t cols, std::int64_t* out);

}  // namespace kernels
}  // namespace ips

#endif  // IPS_LINALG_KERNELS_H_
