// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Packed {-1,+1}^d point sets. With bit b encoding +1, the inner product
// of two sign vectors is d - 2*popcount(x XOR y), the fast kernel the
// {-1,1} gap embeddings and SimHash sketch comparisons use.

#ifndef IPS_LINALG_SIGN_MATRIX_H_
#define IPS_LINALG_SIGN_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "util/check.h"

namespace ips {

/// Row-major bit-packed matrix over {-1,+1}; bit set means +1.
class SignMatrix {
 public:
  SignMatrix() = default;

  /// Creates a `rows` x `cols` matrix initialized to all -1.
  SignMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Entry (i, j) as +1 / -1.
  int Get(std::size_t i, std::size_t j) const {
    IPS_DCHECK(i < rows_ && j < cols_);
    return ((words_[i * words_per_row_ + (j >> 6)] >> (j & 63)) & 1ULL) ? 1
                                                                        : -1;
  }

  /// Sets entry (i, j); `value` must be +1 or -1.
  void Set(std::size_t i, std::size_t j, int value);

  /// Inner product of row i (this) with row j (other), exact integer.
  std::int64_t DotRows(std::size_t i, const SignMatrix& other,
                       std::size_t j) const;

  /// Hamming distance between row i (this) and row j (other).
  std::size_t HammingRows(std::size_t i, const SignMatrix& other,
                          std::size_t j) const;

  /// Converts row `i` to a dense +-1 double vector.
  std::vector<double> RowAsDense(std::size_t i) const;

  /// Converts to a dense +-1 matrix.
  Matrix ToDense() const;

  /// Builds from a dense matrix with entries exactly +-1.
  static SignMatrix FromDense(const Matrix& dense);

 private:
  std::span<const std::uint64_t> WordsFor(std::size_t i) const {
    return {words_.data() + i * words_per_row_, words_per_row_};
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ips

#endif  // IPS_LINALG_SIGN_MATRIX_H_
