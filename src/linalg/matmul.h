// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Matrix multiplication substrate for the "algebraic techniques" side
// of the paper: Valiant [51] and Karppa et al. [29] obtain subquadratic
// unsigned joins by reducing to (fast) matrix multiplication of the
// embedded point sets. This module provides a cache-blocked classical
// multiply, a Strassen multiply (the practically-implementable fast
// matmul), and the product-matrix join helper computing all pairwise
// inner products Q P^T at once.

#ifndef IPS_LINALG_MATMUL_H_
#define IPS_LINALG_MATMUL_H_

#include <cstddef>

#include "linalg/matrix.h"

namespace ips {

/// C = A * B by the cache-blocked classical algorithm.
/// Requires a.cols() == b.rows().
Matrix Multiply(const Matrix& a, const Matrix& b);

/// C = A * B by Strassen's algorithm (inputs padded to the next power
/// of two; recursion switches to the blocked kernel at `cutoff`).
/// Asymptotically O(n^2.807) multiplications. Requires
/// a.cols() == b.rows(); cutoff >= 2.
Matrix MultiplyStrassen(const Matrix& a, const Matrix& b,
                        std::size_t cutoff = 64);

/// A^T as a new matrix.
Matrix Transpose(const Matrix& a);

/// All pairwise inner products of rows: G[i][j] = <queries_i, data_j>,
/// i.e. Q D^T, computed with the blocked kernel (or Strassen when
/// `use_strassen`). This is the one-shot algebraic join primitive.
Matrix PairwiseInnerProducts(const Matrix& queries, const Matrix& data,
                             bool use_strassen = false);

}  // namespace ips

#endif  // IPS_LINALG_MATMUL_H_
