#include "linalg/matmul.h"

#include <algorithm>

#include "util/check.h"

namespace ips {
namespace {

constexpr std::size_t kBlock = 32;

// C += A[a_r0:a_r0+m, a_c0:a_c0+k] * B[b_r0:b_r0+k, b_c0:b_c0+p]
// restricted to valid indices; C is m x p dense row-major.
void BlockedMultiplyInto(const Matrix& a, const Matrix& b, Matrix* c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t p = b.cols();
  for (std::size_t ii = 0; ii < m; ii += kBlock) {
    const std::size_t i_end = std::min(ii + kBlock, m);
    for (std::size_t kk = 0; kk < k; kk += kBlock) {
      const std::size_t k_end = std::min(kk + kBlock, k);
      for (std::size_t jj = 0; jj < p; jj += kBlock) {
        const std::size_t j_end = std::min(jj + kBlock, p);
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t t = kk; t < k_end; ++t) {
            const double a_it = a.At(i, t);
            if (a_it == 0.0) continue;
            const std::span<const double> b_row = b.Row(t);
            const std::span<double> c_row = c->Row(i);
            for (std::size_t j = jj; j < j_end; ++j) {
              c_row[j] += a_it * b_row[j];
            }
          }
        }
      }
    }
  }
}

// Square power-of-two matrices as flat buffers for the Strassen
// recursion.
struct Square {
  std::size_t n = 0;
  std::vector<double> data;

  double At(std::size_t i, std::size_t j) const { return data[i * n + j]; }
  double& At(std::size_t i, std::size_t j) { return data[i * n + j]; }
};

Square SubQuadrant(const Square& s, std::size_t row0, std::size_t col0) {
  Square out;
  out.n = s.n / 2;
  out.data.resize(out.n * out.n);
  for (std::size_t i = 0; i < out.n; ++i) {
    for (std::size_t j = 0; j < out.n; ++j) {
      out.At(i, j) = s.At(row0 + i, col0 + j);
    }
  }
  return out;
}

Square Add(const Square& a, const Square& b) {
  Square out;
  out.n = a.n;
  out.data.resize(a.data.size());
  for (std::size_t t = 0; t < a.data.size(); ++t) {
    out.data[t] = a.data[t] + b.data[t];
  }
  return out;
}

Square Sub(const Square& a, const Square& b) {
  Square out;
  out.n = a.n;
  out.data.resize(a.data.size());
  for (std::size_t t = 0; t < a.data.size(); ++t) {
    out.data[t] = a.data[t] - b.data[t];
  }
  return out;
}

Square MultiplyBase(const Square& a, const Square& b) {
  Square c;
  c.n = a.n;
  c.data.assign(a.n * a.n, 0.0);
  for (std::size_t i = 0; i < a.n; ++i) {
    for (std::size_t t = 0; t < a.n; ++t) {
      const double a_it = a.At(i, t);
      if (a_it == 0.0) continue;
      for (std::size_t j = 0; j < a.n; ++j) {
        c.At(i, j) += a_it * b.At(t, j);
      }
    }
  }
  return c;
}

Square StrassenRecurse(const Square& a, const Square& b,
                       std::size_t cutoff) {
  if (a.n <= cutoff) return MultiplyBase(a, b);
  const std::size_t half = a.n / 2;
  const Square a11 = SubQuadrant(a, 0, 0);
  const Square a12 = SubQuadrant(a, 0, half);
  const Square a21 = SubQuadrant(a, half, 0);
  const Square a22 = SubQuadrant(a, half, half);
  const Square b11 = SubQuadrant(b, 0, 0);
  const Square b12 = SubQuadrant(b, 0, half);
  const Square b21 = SubQuadrant(b, half, 0);
  const Square b22 = SubQuadrant(b, half, half);

  const Square m1 = StrassenRecurse(Add(a11, a22), Add(b11, b22), cutoff);
  const Square m2 = StrassenRecurse(Add(a21, a22), b11, cutoff);
  const Square m3 = StrassenRecurse(a11, Sub(b12, b22), cutoff);
  const Square m4 = StrassenRecurse(a22, Sub(b21, b11), cutoff);
  const Square m5 = StrassenRecurse(Add(a11, a12), b22, cutoff);
  const Square m6 = StrassenRecurse(Sub(a21, a11), Add(b11, b12), cutoff);
  const Square m7 = StrassenRecurse(Sub(a12, a22), Add(b21, b22), cutoff);

  Square c;
  c.n = a.n;
  c.data.resize(a.n * a.n);
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t j = 0; j < half; ++j) {
      c.At(i, j) = m1.At(i, j) + m4.At(i, j) - m5.At(i, j) + m7.At(i, j);
      c.At(i, j + half) = m3.At(i, j) + m5.At(i, j);
      c.At(i + half, j) = m2.At(i, j) + m4.At(i, j);
      c.At(i + half, j + half) =
          m1.At(i, j) - m2.At(i, j) + m3.At(i, j) + m6.At(i, j);
    }
  }
  return c;
}

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Matrix Multiply(const Matrix& a, const Matrix& b) {
  IPS_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  BlockedMultiplyInto(a, b, &c);
  return c;
}

Matrix MultiplyStrassen(const Matrix& a, const Matrix& b,
                        std::size_t cutoff) {
  IPS_CHECK_EQ(a.cols(), b.rows());
  IPS_CHECK_GE(cutoff, 2u);
  const std::size_t n =
      NextPowerOfTwo(std::max({a.rows(), a.cols(), b.cols()}));
  Square sa;
  sa.n = n;
  sa.data.assign(n * n, 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) sa.At(i, j) = a.At(i, j);
  }
  Square sb;
  sb.n = n;
  sb.data.assign(n * n, 0.0);
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) sb.At(i, j) = b.At(i, j);
  }
  const Square sc = StrassenRecurse(sa, sb, cutoff);
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) c.At(i, j) = sc.At(i, j);
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out.At(j, i) = a.At(i, j);
    }
  }
  return out;
}

Matrix PairwiseInnerProducts(const Matrix& queries, const Matrix& data,
                             bool use_strassen) {
  IPS_CHECK_EQ(queries.cols(), data.cols());
  const Matrix data_t = Transpose(data);
  return use_strassen ? MultiplyStrassen(queries, data_t)
                      : Multiply(queries, data_t);
}

}  // namespace ips
