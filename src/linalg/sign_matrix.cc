#include "linalg/sign_matrix.h"

#include <bit>

namespace ips {

SignMatrix::SignMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      words_(rows * words_per_row_, 0) {}

void SignMatrix::Set(std::size_t i, std::size_t j, int value) {
  IPS_DCHECK(i < rows_ && j < cols_);
  IPS_CHECK(value == 1 || value == -1) << "sign entry must be +-1:" << value;
  std::uint64_t& word = words_[i * words_per_row_ + (j >> 6)];
  const std::uint64_t mask = 1ULL << (j & 63);
  if (value == 1) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

std::size_t SignMatrix::HammingRows(std::size_t i, const SignMatrix& other,
                                    std::size_t j) const {
  IPS_CHECK_EQ(cols_, other.cols_);
  const std::span<const std::uint64_t> a = WordsFor(i);
  const std::span<const std::uint64_t> b = other.WordsFor(j);
  std::size_t distance = 0;
  for (std::size_t w = 0; w + 1 < words_per_row_; ++w) {
    distance += std::popcount(a[w] ^ b[w]);
  }
  if (words_per_row_ > 0) {
    // Mask tail bits beyond cols_ in the last word.
    const std::size_t tail_bits = cols_ & 63;
    std::uint64_t diff = a[words_per_row_ - 1] ^ b[words_per_row_ - 1];
    if (tail_bits != 0) diff &= (1ULL << tail_bits) - 1;
    distance += std::popcount(diff);
  }
  return distance;
}

std::int64_t SignMatrix::DotRows(std::size_t i, const SignMatrix& other,
                                 std::size_t j) const {
  const std::size_t hamming = HammingRows(i, other, j);
  return static_cast<std::int64_t>(cols_) -
         2 * static_cast<std::int64_t>(hamming);
}

std::vector<double> SignMatrix::RowAsDense(std::size_t i) const {
  std::vector<double> row(cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    row[j] = static_cast<double>(Get(i, j));
  }
  return row;
}

Matrix SignMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      dense.At(i, j) = static_cast<double>(Get(i, j));
    }
  }
  return dense;
}

SignMatrix SignMatrix::FromDense(const Matrix& dense) {
  SignMatrix result(dense.rows(), dense.cols());
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense.At(i, j);
      IPS_CHECK(v == 1.0 || v == -1.0) << "entry not a sign:" << v;
      result.Set(i, j, v > 0 ? 1 : -1);
    }
  }
  return result;
}

}  // namespace ips
