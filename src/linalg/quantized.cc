#include "linalg/quantized.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"

namespace ips {

namespace {

// round(x / scale) clamped to the dot_i8 contract range. The clamp is
// defensive: with scale = max|x| / 127 every quotient already lands in
// [-127, 127], but rounding at the boundary must never produce -128.
std::int8_t Code(double x, double inv_scale) {
  const double scaled = x * inv_scale;
  const long rounded = std::lround(scaled);
  return static_cast<std::int8_t>(std::clamp<long>(rounded, -127, 127));
}

}  // namespace

QuantizedVector QuantizeVector(std::span<const double> x) {
  QuantizedVector q;
  q.codes.resize(x.size(), 0);
  double max_abs = 0.0;
  for (double v : x) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0) return q;  // scale 0, all-zero codes
  q.scale = max_abs / 127.0;
  const double inv_scale = 127.0 / max_abs;
  std::int32_t l1 = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    q.codes[i] = Code(x[i], inv_scale);
    l1 += std::abs(static_cast<std::int32_t>(q.codes[i]));
  }
  q.code_l1 = static_cast<double>(l1);
  return q;
}

QuantizedMatrix QuantizedMatrix::Quantize(const Matrix& data) {
  QuantizedMatrix qm;
  qm.rows_ = data.rows();
  qm.cols_ = data.cols();
  qm.codes_.assign(qm.rows_ * qm.cols_, 0);
  qm.code_l1_.assign(qm.rows_, 0);
  const std::size_t num_blocks =
      (qm.rows_ + kRowsPerBlock - 1) / kRowsPerBlock;
  qm.scales_.assign(num_blocks, 0.0);
  const double* base = data.raw();
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t row_begin = b * kRowsPerBlock;
    const std::size_t row_end =
        std::min(row_begin + kRowsPerBlock, qm.rows_);
    double max_abs = 0.0;
    for (std::size_t i = row_begin * qm.cols_; i < row_end * qm.cols_;
         ++i) {
      max_abs = std::max(max_abs, std::abs(base[i]));
    }
    if (max_abs == 0.0) continue;  // scale 0, codes stay 0
    qm.scales_[b] = max_abs / 127.0;
    const double inv_scale = 127.0 / max_abs;
    for (std::size_t r = row_begin; r < row_end; ++r) {
      std::int32_t l1 = 0;
      for (std::size_t j = 0; j < qm.cols_; ++j) {
        const std::int8_t c = Code(base[r * qm.cols_ + j], inv_scale);
        qm.codes_[r * qm.cols_ + j] = c;
        l1 += std::abs(static_cast<std::int32_t>(c));
      }
      qm.code_l1_[r] = l1;
    }
  }
  return qm;
}

void QuantizedMatrix::EstimateAll(const QuantizedVector& q,
                                  std::span<double> out) const {
  IPS_DCHECK(q.codes.size() == cols_);
  IPS_DCHECK(out.size() == rows_);
  if (rows_ == 0) return;
  std::int32_t scratch[kRowsPerBlock];
  for (std::size_t b = 0; b < scales_.size(); ++b) {
    const std::size_t row_begin = b * kRowsPerBlock;
    const std::size_t nrows =
        std::min(kRowsPerBlock, rows_ - row_begin);
    const double factor = scales_[b] * q.scale;
    if (factor == 0.0) {
      std::fill_n(out.begin() + row_begin, nrows, 0.0);
      continue;
    }
    kernels::ScoreBlockI8(codes_.data() + row_begin * cols_, nrows, cols_,
                          q.codes.data(), scratch);
    for (std::size_t r = 0; r < nrows; ++r) {
      out[row_begin + r] = factor * static_cast<double>(scratch[r]);
    }
  }
}

void QuantizedMatrix::EstimateGathered(const QuantizedVector& q,
                                       std::span<const std::size_t> indices,
                                       std::span<double> out) const {
  IPS_DCHECK(q.codes.size() == cols_);
  IPS_DCHECK(out.size() == indices.size());
  const kernels::KernelOps& ops = kernels::ActiveOps();
  for (std::size_t j = 0; j < indices.size(); ++j) {
    IPS_DCHECK(indices[j] < rows_);
    const std::int32_t raw = ops.dot_i8(codes_.data() + indices[j] * cols_,
                                        q.codes.data(), cols_);
    out[j] = RowScale(indices[j]) * q.scale * static_cast<double>(raw);
  }
}

}  // namespace ips
