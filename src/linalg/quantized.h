// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// int8 fixed-point companion of Matrix: per-row-block symmetric
// quantization for the two-stage scoring path (DESIGN.md §13).
//
// Rows are grouped into blocks of kRowsPerBlock; each block stores one
// scale s = max|entry| / 127 and codes c_i = round(x_i / s), so every
// code lies in [-127, 127] (the KernelOps::dot_i8 contract). The
// estimated inner product of data row r against a quantized query q is
//
//   est(r, q) = RowScale(r) * q.scale * <codes_r, q.codes>_i32
//
// computed by the dispatched int8 kernels at one byte per entry — an
// 8x smaller memory footprint than the double row and a cheaper
// multiply, which is what the survivor-selection pass of the two-stage
// scorer runs on. The error is rigorously bounded (ErrorBound below):
// with x = s_x(c_x + e_x), |e_x| <= 1/2 per entry,
//
//   |<x,y> - est| <= s_x s_y (L1(c_x)/2 + L1(c_y)/2 + d/4),
//
// which the LSH bucket join uses to skip exact verification *losslessly*
// (skip only when est + bound < cs). Top-k paths instead oversample
// survivors and re-rank exactly; see core/top_k.h.
//
// Thread-safety: lock-free by construction (audited, ipslint
// lock-order pass). QuantizedMatrix holds no mutable shared state —
// Quantize() fills it once, every accessor is const, and concurrent
// scoring threads only read; QuantizedVector is a value type. No
// IPS_GUARDED_BY members are needed here.

#ifndef IPS_LINALG_QUANTIZED_H_
#define IPS_LINALG_QUANTIZED_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "util/check.h"

namespace ips {

/// One quantized vector: int8 codes plus the dequantization scale
/// (scale == 0 iff the vector is all zeros, in which case every code is
/// 0 and every estimate through it is exactly 0).
struct QuantizedVector {
  std::vector<std::int8_t> codes;
  double scale = 0.0;
  double code_l1 = 0.0;  // sum |codes[i]|, for ErrorBound
};

/// Quantizes `x` with scale = max|x_i| / 127 (codes in [-127, 127]).
QuantizedVector QuantizeVector(std::span<const double> x);

/// int8 codes of a whole Matrix with one scale per row block.
class QuantizedMatrix {
 public:
  /// Rows sharing one scale factor. Small enough that one outlier row
  /// cannot flatten many neighbors' codes, large enough that the scale
  /// array stays negligible.
  static constexpr std::size_t kRowsPerBlock = 32;

  QuantizedMatrix() = default;

  /// Quantizes every row of `data` (finite entries required — callers
  /// sit behind the index factories, which validate).
  static QuantizedMatrix Quantize(const Matrix& data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  const std::int8_t* RowCodes(std::size_t r) const {
    IPS_DCHECK(r < rows_);
    return codes_.data() + r * cols_;
  }

  double RowScale(std::size_t r) const {
    IPS_DCHECK(r < rows_);
    return scales_[r / kRowsPerBlock];
  }

  /// L1 norm of row r's codes (precomputed at Quantize time; one term
  /// of the rigorous error bound).
  double RowCodeL1(std::size_t r) const {
    IPS_DCHECK(r < rows_);
    return static_cast<double>(code_l1_[r]);
  }

  /// out[r] = estimated <data row r, original query> for every row,
  /// via one dispatched int8 pass per row block.
  void EstimateAll(const QuantizedVector& q, std::span<double> out) const;

  /// out[j] = estimated score of data row indices[j]: the gathered
  /// flavor behind LSH candidate pruning.
  void EstimateGathered(const QuantizedVector& q,
                        std::span<const std::size_t> indices,
                        std::span<double> out) const;

  /// Rigorous bound on |exact - estimate| for row r against q:
  /// RowScale(r) * q.scale * (RowCodeL1(r)/2 + q.code_l1/2 + cols/4).
  double ErrorBound(std::size_t r, const QuantizedVector& q) const {
    return RowScale(r) * q.scale *
           (0.5 * RowCodeL1(r) + 0.5 * q.code_l1 +
            0.25 * static_cast<double>(cols_));
  }

  /// Bytes held by codes + scales (the footprint reported by benches).
  std::size_t MemoryBytes() const {
    return codes_.size() * sizeof(std::int8_t) +
           scales_.size() * sizeof(double) +
           code_l1_.size() * sizeof(std::int32_t);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int8_t> codes_;     // row-major, rows_ * cols_
  std::vector<double> scales_;         // one per row block
  std::vector<std::int32_t> code_l1_;  // one per row
};

}  // namespace ips

#endif  // IPS_LINALG_QUANTIZED_H_
