#include "linalg/random_projection.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {

GaussianProjection::GaussianProjection(std::size_t output_dim,
                                       std::size_t input_dim, Rng* rng,
                                       bool normalize)
    : matrix_(output_dim, input_dim) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(output_dim, 0u);
  IPS_CHECK_GT(input_dim, 0u);
  const double scale =
      normalize ? 1.0 / std::sqrt(static_cast<double>(output_dim)) : 1.0;
  for (double& entry : matrix_.data()) {
    entry = scale * rng->NextGaussian();
  }
}

std::vector<double> GaussianProjection::Apply(
    std::span<const double> x) const {
  IPS_CHECK_EQ(x.size(), matrix_.cols());
  std::vector<double> result(matrix_.rows());
  for (std::size_t i = 0; i < matrix_.rows(); ++i) {
    result[i] = kernels::Dot(matrix_.Row(i), x);
  }
  return result;
}

Matrix GaussianProjection::ApplyToRows(const Matrix& points) const {
  Matrix result(points.rows(), matrix_.rows());
  for (std::size_t i = 0; i < points.rows(); ++i) {
    const std::vector<double> projected = Apply(points.Row(i));
    for (std::size_t j = 0; j < projected.size(); ++j) {
      result.At(i, j) = projected[j];
    }
  }
  return result;
}

}  // namespace ips
