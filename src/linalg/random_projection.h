// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Gaussian random projections (Johnson-Lindenstrauss). Used as a building
// block for p-stable LSH and as a dimensionality-reduction substrate.

#ifndef IPS_LINALG_RANDOM_PROJECTION_H_
#define IPS_LINALG_RANDOM_PROJECTION_H_

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "rng/random.h"

namespace ips {

/// A k x d matrix of i.i.d. N(0, 1) entries, optionally scaled by
/// 1/sqrt(k) so that E||Ax||^2 = ||x||^2 (JL normalization).
class GaussianProjection {
 public:
  /// Samples the projection. `normalize` toggles the 1/sqrt(k) scale.
  GaussianProjection(std::size_t output_dim, std::size_t input_dim,
                     Rng* rng, bool normalize = true);

  std::size_t output_dim() const { return matrix_.rows(); }
  std::size_t input_dim() const { return matrix_.cols(); }

  /// y = A x.
  std::vector<double> Apply(std::span<const double> x) const;

  /// Projects every row of `points`, producing a rows x output_dim matrix.
  Matrix ApplyToRows(const Matrix& points) const;

  const Matrix& matrix() const { return matrix_; }

 private:
  Matrix matrix_;
};

}  // namespace ips

#endif  // IPS_LINALG_RANDOM_PROJECTION_H_
