#include "linalg/matrix.h"

namespace ips {

void Matrix::AppendRow(std::span<const double> row) {
  IPS_CHECK(view_ == nullptr) << "appending to a Matrix::View";
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  }
  IPS_CHECK_EQ(row.size(), cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

}  // namespace ips
