#include "linalg/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace ips {
namespace kernels {

// ---------------------------------------------------------------------
// Scalar implementations.
// ---------------------------------------------------------------------
namespace {

double DotScalar(const double* x, const double* y, std::size_t n) {
  // Four interleaved accumulators give the compiler room to vectorize
  // without reassociating a single serial chain; the AVX2 path keeps
  // the same lane grouping so the two stay within rounding of each
  // other.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += x[i] * y[i];
    acc1 += x[i + 1] * y[i + 1];
    acc2 += x[i + 2] * y[i + 2];
    acc3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) acc0 += x[i] * y[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

void MatVecScalar(const double* data, std::size_t rows, std::size_t cols,
                  const double* q, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = DotScalar(data + r * cols, q, cols);
  }
}

void ScoreBlockScalar(const double* data, std::size_t rows,
                      std::size_t cols, const double* queries,
                      std::size_t num_q, std::size_t q_stride, double* out,
                      std::size_t out_stride) {
  for (std::size_t qi = 0; qi < num_q; ++qi) {
    const double* q = queries + qi * q_stride;
    double* row_out = out + qi * out_stride;
    for (std::size_t r = 0; r < rows; ++r) {
      row_out[r] = DotScalar(data + r * cols, q, cols);
    }
  }
}

std::int32_t DotI8Scalar(const std::int8_t* x, const std::int8_t* y,
                         std::size_t n) {
  // Same four-lane interleave as DotScalar; integer adds associate
  // freely, so the result is exact regardless of grouping and matches
  // the AVX2 pipeline bit for bit.
  std::int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<std::int32_t>(x[i]) * y[i];
    acc1 += static_cast<std::int32_t>(x[i + 1]) * y[i + 1];
    acc2 += static_cast<std::int32_t>(x[i + 2]) * y[i + 2];
    acc3 += static_cast<std::int32_t>(x[i + 3]) * y[i + 3];
  }
  for (; i < n; ++i) acc0 += static_cast<std::int32_t>(x[i]) * y[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

void ScoreBlockI8Scalar(const std::int8_t* codes, std::size_t rows,
                        std::size_t cols, const std::int8_t* q,
                        std::int32_t* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = DotI8Scalar(codes + r * cols, q, cols);
  }
}

}  // namespace

const KernelOps& ScalarOps() {
  static const KernelOps ops = {"scalar",          &DotScalar,
                                &MatVecScalar,     &ScoreBlockScalar,
                                &DotI8Scalar,      &ScoreBlockI8Scalar};
  return ops;
}

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

bool Avx2Available() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool available =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return available;
#else
  return false;
#endif
}

bool ForceScalar() {
  static const bool forced = [] {
    const char* value = std::getenv("IPS_FORCE_SCALAR");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
  }();
  return forced;
}

const KernelOps& ActiveOps() {
  static const KernelOps& active =
      (!ForceScalar() && Avx2Available()) ? Avx2Ops() : ScalarOps();
  return active;
}

const char* ActiveIsaName() { return ActiveOps().name; }

// ---------------------------------------------------------------------
// Dispatched vector ops.
// ---------------------------------------------------------------------

double Norm(std::span<const double> x) { return std::sqrt(SquaredNorm(x)); }

double LpNorm(std::span<const double> x, double p) {
  IPS_CHECK_GE(p, 1.0);
  double sum = 0.0;
  for (double v : x) sum += std::pow(std::abs(v), p);
  return std::pow(sum, 1.0 / p);
}

double LInfNorm(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double SquaredDistance(std::span<const double> x, std::span<const double> y) {
  IPS_DCHECK(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double diff = x[i] - y[i];
    sum += diff * diff;
  }
  return sum;
}

void ScaleInPlace(std::span<double> x, double factor) {
  for (double& v : x) v *= factor;
}

void NormalizeInPlace(std::span<double> x) {
  const double norm = Norm(x);
  if (norm > 0.0) ScaleInPlace(x, 1.0 / norm);
}

std::vector<double> Normalized(std::span<const double> x) {
  std::vector<double> result(x.begin(), x.end());
  NormalizeInPlace(result);
  return result;
}

double CosineSimilarity(std::span<const double> x, std::span<const double> y) {
  const double nx = Norm(x);
  const double ny = Norm(y);
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return Dot(x, y) / (nx * ny);
}

// ---------------------------------------------------------------------
// Batch kernels.
// ---------------------------------------------------------------------

void MatVec(const Matrix& data, std::span<const double> q,
            std::span<double> out) {
  IPS_DCHECK(q.size() == data.cols());
  IPS_DCHECK(out.size() == data.rows());
  ActiveOps().matvec(data.raw(), data.rows(), data.cols(), q.data(),
                     out.data());
}

void GatherScores(const Matrix& data, std::span<const std::size_t> indices,
                  std::span<const double> q, std::span<double> out) {
  IPS_DCHECK(out.size() == indices.size());
  const KernelOps& ops = ActiveOps();
  const double* base = data.raw();
  const std::size_t cols = data.cols();
  for (std::size_t j = 0; j < indices.size(); ++j) {
    IPS_DCHECK(indices[j] < data.rows());
    out[j] = ops.dot(base + indices[j] * cols, q.data(), cols);
  }
}

void TopKHeap::Push(std::size_t index, double value) {
  const ScoredIndex entry{index, value};
  if (heap_.size() < k_) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), &HeapGreater);
    return;
  }
  if (!Worse(heap_.front(), entry)) return;
  std::pop_heap(heap_.begin(), heap_.end(), &HeapGreater);
  heap_.back() = entry;
  std::push_heap(heap_.begin(), heap_.end(), &HeapGreater);
}

std::vector<ScoredIndex> TopKHeap::TakeSorted() {
  std::vector<ScoredIndex> sorted = std::move(heap_);
  heap_.clear();
  std::sort(sorted.begin(), sorted.end(),
            [](const ScoredIndex& a, const ScoredIndex& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.index < b.index;
            });
  return sorted;
}

namespace {

// Tile shape of the blocked scorer. A 64x8 tile of doubles is a 4 KiB
// scratch: data rows stay in L1 across the query block, and eight
// queries (8 * d doubles) fit L1 alongside one row tile for any d the
// library meets in practice.
constexpr std::size_t kRowTile = 64;
constexpr std::size_t kQueryTile = 8;

// Second blocking level: a run of data rows sized to sit in L2 while
// every query tile sweeps over it. Without it, large batches stream the
// whole data matrix from memory once per 8 queries and the scorer goes
// memory-bound; with it, data traffic drops to one read of the data
// plus one read of the queries per row block.
constexpr std::size_t kRowBlockBytes = 512 * 1024;

std::size_t RowBlockRows(std::size_t cols) {
  const std::size_t rows = kRowBlockBytes / (cols * sizeof(double));
  // Round down to a whole number of row tiles, never below one tile.
  return std::max(kRowTile, rows - rows % kRowTile);
}

}  // namespace

void BlockTopK(const Matrix& data, std::size_t row_begin,
               std::size_t row_end, const Matrix& queries, bool absolute,
               std::span<TopKHeap> heaps, std::size_t index_offset) {
  IPS_DCHECK(queries.cols() == data.cols());
  IPS_DCHECK(heaps.size() == queries.rows());
  IPS_DCHECK(row_begin <= row_end && row_end <= data.rows());
  const KernelOps& ops = ActiveOps();
  const std::size_t cols = data.cols();
  const double* data_base = data.raw();
  const double* query_base = queries.raw();
  double scratch[kRowTile * kQueryTile];

  const std::size_t block_rows = RowBlockRows(cols);
  for (std::size_t rb = row_begin; rb < row_end; rb += block_rows) {
    const std::size_t rb_end = std::min(rb + block_rows, row_end);
    for (std::size_t q0 = 0; q0 < queries.rows(); q0 += kQueryTile) {
      const std::size_t nq = std::min(kQueryTile, queries.rows() - q0);
      for (std::size_t r0 = rb; r0 < rb_end; r0 += kRowTile) {
        const std::size_t nr = std::min(kRowTile, rb_end - r0);
        ops.score_block(data_base + r0 * cols, nr, cols,
                        query_base + q0 * cols, nq, cols, scratch, kRowTile);
        for (std::size_t qi = 0; qi < nq; ++qi) {
          TopKHeap& heap = heaps[q0 + qi];
          const double* tile = scratch + qi * kRowTile;
          // The registered floor makes the common reject a single
          // compare; values at the floor still go through Accepts so
          // the (value, index) tie-break stays exact.
          double floor = heap.Floor();
          for (std::size_t r = 0; r < nr; ++r) {
            const double value = absolute ? std::abs(tile[r]) : tile[r];
            if (value < floor) continue;
            const std::size_t index = r0 + r + index_offset;
            if (heap.Accepts(value, index)) {
              heap.Push(index, value);
              floor = heap.Floor();
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Batched popcount inner products.
// ---------------------------------------------------------------------

void AndPopcountMany(const std::uint64_t* q, const std::uint64_t* rows,
                     std::size_t words_per_row, std::size_t nrows,
                     std::uint32_t* out) {
  for (std::size_t r = 0; r < nrows; ++r) {
    const std::uint64_t* row = rows + r * words_per_row;
    std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    std::size_t w = 0;
    for (; w + 4 <= words_per_row; w += 4) {
      c0 += static_cast<std::uint64_t>(__builtin_popcountll(q[w] & row[w]));
      c1 += static_cast<std::uint64_t>(
          __builtin_popcountll(q[w + 1] & row[w + 1]));
      c2 += static_cast<std::uint64_t>(
          __builtin_popcountll(q[w + 2] & row[w + 2]));
      c3 += static_cast<std::uint64_t>(
          __builtin_popcountll(q[w + 3] & row[w + 3]));
    }
    for (; w < words_per_row; ++w) {
      c0 += static_cast<std::uint64_t>(__builtin_popcountll(q[w] & row[w]));
    }
    out[r] = static_cast<std::uint32_t>(c0 + c1 + c2 + c3);
  }
}

void SignDotMany(const std::uint64_t* q, const std::uint64_t* rows,
                 std::size_t words_per_row, std::size_t nrows,
                 std::size_t cols, std::int64_t* out) {
  for (std::size_t r = 0; r < nrows; ++r) {
    const std::uint64_t* row = rows + r * words_per_row;
    std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    std::size_t w = 0;
    for (; w + 4 <= words_per_row; w += 4) {
      c0 += static_cast<std::uint64_t>(__builtin_popcountll(q[w] ^ row[w]));
      c1 += static_cast<std::uint64_t>(
          __builtin_popcountll(q[w + 1] ^ row[w + 1]));
      c2 += static_cast<std::uint64_t>(
          __builtin_popcountll(q[w + 2] ^ row[w + 2]));
      c3 += static_cast<std::uint64_t>(
          __builtin_popcountll(q[w + 3] ^ row[w + 3]));
    }
    for (; w < words_per_row; ++w) {
      c0 += static_cast<std::uint64_t>(__builtin_popcountll(q[w] ^ row[w]));
    }
    const std::uint64_t hamming = c0 + c1 + c2 + c3;
    out[r] = static_cast<std::int64_t>(cols) -
             2 * static_cast<std::int64_t>(hamming);
  }
}

}  // namespace kernels
}  // namespace ips
