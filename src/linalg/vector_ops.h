// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Scalar kernels on dense vectors: inner products, norms, normalization.

#ifndef IPS_LINALG_VECTOR_OPS_H_
#define IPS_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace ips {

/// Inner product <x, y>. Requires x.size() == y.size().
double Dot(std::span<const double> x, std::span<const double> y);

/// Squared Euclidean norm ||x||^2.
double SquaredNorm(std::span<const double> x);

/// Euclidean norm ||x||.
double Norm(std::span<const double> x);

/// ell_p norm for p >= 1; p may be +infinity via LInfNorm.
double LpNorm(std::span<const double> x, double p);

/// max_i |x_i|.
double LInfNorm(std::span<const double> x);

/// Squared Euclidean distance ||x - y||^2.
double SquaredDistance(std::span<const double> x, std::span<const double> y);

/// Scales x in place by `factor`.
void ScaleInPlace(std::span<double> x, double factor);

/// Normalizes x in place to unit Euclidean norm; no-op on the zero vector.
void NormalizeInPlace(std::span<double> x);

/// Returns x / ||x|| (copy); returns x unchanged if ||x|| == 0.
std::vector<double> Normalized(std::span<const double> x);

/// Cosine similarity <x,y>/(||x|| ||y||); 0 when either norm is 0.
double CosineSimilarity(std::span<const double> x, std::span<const double> y);

}  // namespace ips

#endif  // IPS_LINALG_VECTOR_OPS_H_
