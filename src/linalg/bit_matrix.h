// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Packed {0,1}^d point sets. Inner products between binary vectors are
// popcounts of word-wise ANDs, which is what both the OVP solver and the
// {0,1} gap embeddings operate on.

#ifndef IPS_LINALG_BIT_MATRIX_H_
#define IPS_LINALG_BIT_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "util/check.h"

namespace ips {

/// Row-major bit-packed matrix over {0,1}; each row is one binary point.
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Creates an all-zeros `rows` x `cols` bit matrix.
  BitMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t words_per_row() const { return words_per_row_; }

  /// Bit (i, j).
  bool Get(std::size_t i, std::size_t j) const {
    IPS_DCHECK(i < rows_ && j < cols_);
    return (WordsFor(i)[j >> 6] >> (j & 63)) & 1ULL;
  }

  /// Sets bit (i, j) to `value`.
  void Set(std::size_t i, std::size_t j, bool value) {
    IPS_DCHECK(i < rows_ && j < cols_);
    std::uint64_t& word = words_[i * words_per_row_ + (j >> 6)];
    const std::uint64_t mask = 1ULL << (j & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  /// Read-only packed words of row `i`.
  std::span<const std::uint64_t> WordsFor(std::size_t i) const {
    IPS_DCHECK(i < rows_);
    return {words_.data() + i * words_per_row_, words_per_row_};
  }

  /// Number of ones in row `i`.
  std::size_t RowPopcount(std::size_t i) const;

  /// Inner product of row `i` of this and row `j` of `other`
  /// (= |intersection| for set-represented vectors).
  std::size_t DotRows(std::size_t i, const BitMatrix& other,
                      std::size_t j) const;

  /// True iff rows i (this) and j (other) are orthogonal (empty AND).
  bool OrthogonalRows(std::size_t i, const BitMatrix& other,
                      std::size_t j) const;

  /// Converts row `i` to a dense 0/1 double vector.
  std::vector<double> RowAsDense(std::size_t i) const;

  /// Converts the whole matrix to dense 0/1 doubles.
  Matrix ToDense() const;

  /// Builds a BitMatrix from a dense matrix whose entries are 0 or 1.
  static BitMatrix FromDense(const Matrix& dense);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ips

#endif  // IPS_LINALG_BIT_MATRIX_H_
