// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The Section 4.3 data structure for unsigned c-MIPS via linear sketches.
//
// Estimating the value: max_p |p^T q| = ||A q||_inf for the data matrix
// A. Sketch A once as A_s = Pi A (Pi a max-stability ell_kappa sketch
// over R^n); a query costs O(rows(Pi) * d) to form Pi (A q) = A_s q and
// the estimate ||A_s q||_inf ~ ||A q||_kappa is an O(n^(1/kappa))-
// approximation of ||A q||_inf, i.e. approximation factor c = n^(-1/kappa).
//
// Recovering the argmax: a binary tree over the data indices; every node
// holds a sketch of its index range, and the query walks from the root
// towards the child whose estimated max is larger ("recover the index
// bit by bit"). Each data vector appears in O(log n) node sketches, so
// construction stays O~(d n^(2-2/kappa)) and a query O~(d n^(1-2/kappa)).

#ifndef IPS_SKETCH_SKETCH_MIPS_H_
#define IPS_SKETCH_SKETCH_MIPS_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "obs/trace.h"
#include "sketch/max_stability.h"
#include "util/status.h"

namespace ips {

/// Per-query accounting of one RecoverArgmax descent, for callers that
/// fold the numbers into a core::QueryStats.
struct SketchProbeInfo {
  /// Tree levels descended (node pairs estimated).
  std::size_t levels = 0;
  /// Sketch-row inner products computed during the descent (each costs
  /// one length-d dot product, the dot-equivalent work measure).
  std::size_t rows_multiplied = 0;
  /// Leaf points rescanned exactly at the end of the descent.
  std::size_t leaf_points = 0;
};

/// Tuning of the Section 4.3 MIPS index.
struct SketchMipsParams {
  /// Approximation exponent: c = n^(-1/kappa); kappa >= 2.
  double kappa = 4.0;
  /// Median copies per node sketch.
  std::size_t copies = 7;
  /// Bucket multiplier per node sketch.
  double bucket_multiplier = 4.0;
  /// Index ranges of at most this size are scanned exactly.
  std::size_t leaf_size = 8;
};

/// Unsigned c-MIPS index over a fixed data matrix (rows = data vectors).
class SketchMipsIndex {
 public:
  /// Builds the tree of sketched sub-matrices. `data` must outlive the
  /// index. Preconditions are IPS_CHECKed; prefer Create for untrusted
  /// input.
  SketchMipsIndex(const Matrix& data, const SketchMipsParams& params,
                  Rng* rng);

  /// Validated construction: rejects an empty or non-finite `data`,
  /// kappa < 2, copies == 0, leaf_size == 0, a non-positive bucket
  /// multiplier, and a null `rng` with a descriptive Status instead of
  /// aborting. Failpoint: "sketch/build".
  [[nodiscard]] static StatusOr<std::unique_ptr<SketchMipsIndex>> Create(
      const Matrix& data, const SketchMipsParams& params, Rng* rng);

  /// The validation behind Create, without building anything (also used
  /// by the core SketchIndex wrapper to avoid sketching twice).
  static Status Validate(const Matrix& data, const SketchMipsParams& params,
                         Rng* rng);

  std::size_t num_points() const { return data_->rows(); }
  std::size_t dim() const { return data_->cols(); }

  /// Estimated max_p |p^T q| (root sketch only; no recovery).
  double EstimateMaxAbsInnerProduct(std::span<const double> q) const;

  /// Index of a data vector whose |p^T q| approximately maximizes the
  /// absolute inner product (tree descent + exact rescan of the leaf).
  std::size_t RecoverArgmax(std::span<const double> q) const {
    return RecoverArgmax(q, nullptr, nullptr);
  }

  /// Instrumented flavor: when `trace` is non-null, records "probe"
  /// (sketch-estimate descent) and "rerank" (exact leaf rescan) child
  /// spans under the trace's open span; when `info` is non-null, fills
  /// the per-query accounting. Every call bumps the "sketch.*" registry
  /// counters.
  std::size_t RecoverArgmax(std::span<const double> q, Trace* trace,
                            SketchProbeInfo* info) const;

  /// Unsigned (cs, s) search: returns the recovered index if its exact
  /// |p^T q| >= cs, otherwise returns num_points() (no result). The
  /// promise is that some p' has |p'^T q| >= s.
  std::size_t UnsignedSearch(std::span<const double> q, double s,
                             double c) const;

  /// Total number of sketch rows across all nodes (space diagnostic).
  std::size_t TotalSketchRows() const { return total_sketch_rows_; }

  /// Rows of the root sketch: O~(n^(1-2/kappa)), the per-query cost of
  /// value estimation (recovery touches two nodes per level, a geometric
  /// sum dominated by the root).
  std::size_t RootSketchRows() const;

  const SketchMipsParams& params() const { return params_; }

 private:
  struct Node {
    std::size_t begin = 0;
    std::size_t end = 0;  // exclusive
    // Sketched sub-matrix: sketch of the |range|-dimensional vector
    // (p_i^T q)_{i in range} is (sketched_rows * q); sketched_rows has
    // sketch_dim rows of dimension d.
    std::unique_ptr<MaxStabilitySketch> sketch;
    Matrix sketched_rows;  // sketch_dim x d
    int left = -1;
    int right = -1;
  };

  /// Recursively builds the node over [begin, end); returns its index.
  int BuildNode(std::size_t begin, std::size_t end, Rng* rng);

  /// ||A[range] q||_inf estimate at `node`.
  double EstimateNode(const Node& node, std::span<const double> q) const;

  const Matrix* data_;
  SketchMipsParams params_;
  std::vector<Node> nodes_;
  int root_ = -1;
  std::size_t total_sketch_rows_ = 0;
};

/// The Section 4.3 remark: a data structure for unsigned (cs, s) *search*
/// solves unsigned c-MIPS by scaling the query up, q / c^i, until the
/// threshold fires. Returns the number of scaling steps needed for a
/// maximum inner product `gamma` <= value < `s`; used by examples/tests
/// to demonstrate the reduction.
std::size_t CmipsQueryScalingSteps(double s, double c, double gamma);

}  // namespace ips

#endif  // IPS_SKETCH_SKETCH_MIPS_H_
