// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The Section 4.3 remark, made concrete: a data structure for unsigned
// (cs, s) *search* solves unsigned c-MIPS by scaling the query up,
// probing with q / c^i for i = 0, 1, ..., ceil(log_{1/c}(s / gamma)),
// until the threshold fires; gamma is the smallest inner product worth
// distinguishing (e.g. machine precision, or a known lower bound on the
// maximum). The first scale at which the search answers yields a point
// within factor c of the maximum.

#ifndef IPS_SKETCH_CMIPS_VIA_SEARCH_H_
#define IPS_SKETCH_CMIPS_VIA_SEARCH_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

namespace ips {

/// An unsigned (cs, s)-search oracle: given a query, returns the index
/// of some data point p with |p^T q| >= c*s if one with |p^T q| >= s
/// exists (may return nullopt otherwise). The thresholds (s, c) are
/// fixed at oracle construction.
using UnsignedSearchOracle =
    std::function<std::optional<std::size_t>(std::span<const double> query)>;

/// Result of the scaling reduction.
struct CmipsResult {
  std::optional<std::size_t> index;
  /// Number of oracle probes performed (= scaling steps + 1 when found).
  std::size_t probes = 0;
};

/// Solves unsigned c-MIPS with an unsigned (cs, s)-search oracle: probes
/// q / c^i for growing i until the oracle answers. Requires the promise
/// max_p |p^T q| >= gamma > 0.
///
/// Correctness sketch: probing with q' = q / c^i multiplies every inner
/// product by c^-i; the first i at which some product reaches s yields,
/// via the (cs, s) guarantee, a point scoring >= c*s in the scaled
/// space, i.e. within factor c of the true maximum in the original
/// space (up to the threshold granularity).
CmipsResult SolveCmipsViaSearch(const UnsignedSearchOracle& oracle,
                                std::span<const double> query, double s,
                                double c, double gamma);

}  // namespace ips

#endif  // IPS_SKETCH_CMIPS_VIA_SEARCH_H_
