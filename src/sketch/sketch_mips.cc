#include "sketch/sketch_mips.h"

#include <cmath>
#include <memory>

#include "linalg/validate.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace ips {

SketchMipsIndex::SketchMipsIndex(const Matrix& data,
                                 const SketchMipsParams& params, Rng* rng)
    : data_(&data), params_(params) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(data.rows(), 0u);
  IPS_CHECK_GE(params.kappa, 2.0);
  IPS_CHECK_GE(params.leaf_size, 1u);
  root_ = BuildNode(0, data.rows(), rng);
}

StatusOr<std::unique_ptr<SketchMipsIndex>> SketchMipsIndex::Create(
    const Matrix& data, const SketchMipsParams& params, Rng* rng) {
  IPS_RETURN_IF_ERROR(Validate(data, params, rng));
  return std::make_unique<SketchMipsIndex>(data, params, rng);
}

Status SketchMipsIndex::Validate(const Matrix& data,
                                 const SketchMipsParams& params, Rng* rng) {
  IPS_FAILPOINT("sketch/build");
  if (rng == nullptr) {
    return Status::InvalidArgument("SketchMipsIndex requires a non-null rng");
  }
  if (!std::isfinite(params.kappa) || params.kappa < 2.0) {
    return Status::InvalidArgument(
        "sketch kappa must be a finite value >= 2, got " +
        std::to_string(params.kappa));
  }
  if (params.copies < 1) {
    return Status::InvalidArgument("sketch needs copies >= 1");
  }
  if (params.leaf_size < 1) {
    return Status::InvalidArgument("sketch needs leaf_size >= 1");
  }
  if (!std::isfinite(params.bucket_multiplier) ||
      params.bucket_multiplier <= 0.0) {
    return Status::InvalidArgument(
        "sketch bucket multiplier must be finite and positive, got " +
        std::to_string(params.bucket_multiplier));
  }
  IPS_RETURN_IF_ERROR(ValidateNonEmpty(data, "sketch data"));
  IPS_RETURN_IF_ERROR(ValidateFinite(data, "sketch data"));
  return Status::Ok();
}

int SketchMipsIndex::BuildNode(std::size_t begin, std::size_t end, Rng* rng) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[index].begin = begin;
  nodes_[index].end = end;
  const std::size_t size = end - begin;
  if (size > params_.leaf_size) {
    MaxStabilityParams sketch_params;
    sketch_params.kappa = params_.kappa;
    sketch_params.copies = params_.copies;
    sketch_params.bucket_multiplier = params_.bucket_multiplier;
    auto sketch = std::make_unique<MaxStabilitySketch>(size, sketch_params,
                                                       rng);
    Matrix sketched = sketch->SketchDataMatrix(*data_, begin, end);
    total_sketch_rows_ += sketched.rows();
    nodes_[index].sketch = std::move(sketch);
    nodes_[index].sketched_rows = std::move(sketched);
    const std::size_t mid = begin + size / 2;
    // Note: recursive calls may reallocate nodes_; do not hold references.
    const int left = BuildNode(begin, mid, rng);
    const int right = BuildNode(mid, end, rng);
    nodes_[index].left = left;
    nodes_[index].right = right;
  }
  return index;
}

std::size_t SketchMipsIndex::RootSketchRows() const {
  return nodes_[root_].sketched_rows.rows();
}

double SketchMipsIndex::EstimateNode(const Node& node,
                                     std::span<const double> q) const {
  if (node.sketch == nullptr) {
    // Leaf: the range is small, answer exactly.
    double best = 0.0;
    for (std::size_t i = node.begin; i < node.end; ++i) {
      best = std::max(best, std::abs(kernels::Dot(data_->Row(i), q)));
    }
    return best;
  }
  // Estimate pass: every sketch row against q in one dispatched
  // mat-vec sweep instead of a per-row dot loop.
  std::vector<double> sketched_products(node.sketched_rows.rows());
  kernels::MatVec(node.sketched_rows, q, sketched_products);
  return node.sketch->EstimateFromSketch(sketched_products);
}

double SketchMipsIndex::EstimateMaxAbsInnerProduct(
    std::span<const double> q) const {
  const Node& root = nodes_[root_];
  if (root.sketch == nullptr) {
    // Tiny dataset: the root is a leaf; answer exactly.
    double best = 0.0;
    for (std::size_t i = root.begin; i < root.end; ++i) {
      best = std::max(best, std::abs(kernels::Dot(data_->Row(i), q)));
    }
    return best;
  }
  return EstimateNode(root, q);
}

std::size_t SketchMipsIndex::RecoverArgmax(std::span<const double> q,
                                           Trace* trace,
                                           SketchProbeInfo* info) const {
  static Counter* const queries =
      MetricsRegistry::Global().GetCounter("sketch.queries");
  static Counter* const rows_multiplied =
      MetricsRegistry::Global().GetCounter("sketch.rows_multiplied");
  static Counter* const leaf_points =
      MetricsRegistry::Global().GetCounter("sketch.leaf_points");

  SketchProbeInfo local;
  auto node_rows = [this](int index) {
    const Node& node = nodes_[index];
    // A sketchless child is estimated by exact scan of its range.
    return node.sketch != nullptr ? node.sketched_rows.rows()
                                  : node.end - node.begin;
  };
  WallTimer probe_timer;
  int current = root_;
  while (nodes_[current].sketch != nullptr) {
    const Node& node = nodes_[current];
    ++local.levels;
    local.rows_multiplied += node_rows(node.left) + node_rows(node.right);
    const double left_estimate = EstimateNode(nodes_[node.left], q);
    const double right_estimate = EstimateNode(nodes_[node.right], q);
    current = left_estimate >= right_estimate ? node.left : node.right;
  }
  const double probe_seconds = probe_timer.Seconds();

  // Leaf: exact scan of the small range.
  WallTimer rerank_timer;
  const Node& leaf = nodes_[current];
  std::size_t best_index = leaf.begin;
  double best_value = -1.0;
  for (std::size_t i = leaf.begin; i < leaf.end; ++i) {
    const double value = std::abs(kernels::Dot(data_->Row(i), q));
    if (value > best_value) {
      best_value = value;
      best_index = i;
    }
  }
  local.leaf_points = leaf.end - leaf.begin;

  if (trace != nullptr) {
    const std::size_t probe = trace->RecordSpan("probe", probe_seconds);
    trace->AddCount(probe, "levels", local.levels);
    trace->AddCount(probe, "rows_multiplied", local.rows_multiplied);
    const std::size_t rerank =
        trace->RecordSpan("rerank", rerank_timer.Seconds());
    trace->AddCount(rerank, "leaf_points", local.leaf_points);
  }
  queries->Increment();
  rows_multiplied->Add(local.rows_multiplied);
  leaf_points->Add(local.leaf_points);
  if (info != nullptr) *info = local;
  return best_index;
}

std::size_t SketchMipsIndex::UnsignedSearch(std::span<const double> q,
                                            double s, double c) const {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  const std::size_t candidate = RecoverArgmax(q);
  const double value = std::abs(kernels::Dot(data_->Row(candidate), q));
  return value >= c * s ? candidate : num_points();
}

std::size_t CmipsQueryScalingSteps(double s, double c, double gamma) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GT(gamma, 0.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  if (gamma >= s) return 0;
  return static_cast<std::size_t>(
      std::ceil(std::log(s / gamma) / std::log(1.0 / c)));
}

}  // namespace ips
