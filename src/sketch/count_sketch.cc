#include "sketch/count_sketch.h"

#include "util/check.h"

namespace ips {

CountSketch::CountSketch(std::size_t input_dim, std::size_t num_buckets,
                         Rng* rng)
    : num_buckets_(num_buckets),
      buckets_(input_dim),
      signs_(input_dim) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(input_dim, 0u);
  IPS_CHECK_GT(num_buckets, 0u);
  for (std::size_t j = 0; j < input_dim; ++j) {
    buckets_[j] = static_cast<std::uint32_t>(rng->NextBounded(num_buckets));
    signs_[j] = rng->NextSign() > 0 ? 1.0 : -1.0;
  }
}

std::vector<double> CountSketch::Apply(std::span<const double> x) const {
  IPS_CHECK_EQ(x.size(), buckets_.size());
  std::vector<double> out(num_buckets_, 0.0);
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[buckets_[j]] += signs_[j] * x[j];
  }
  return out;
}

}  // namespace ips
