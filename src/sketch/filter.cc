#include "sketch/filter.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {

namespace {

std::size_t ResolveBuckets(std::size_t requested, std::size_t dim) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(4, dim / 3);
}

}  // namespace

Status ValidateFilterParams(const SketchFilterParams& params) {
  if (params.copies < 1) {
    return Status::InvalidArgument("filter copies must be >= 1, got " +
                                   std::to_string(params.copies));
  }
  if (!std::isfinite(params.survivor_multiplier) ||
      params.survivor_multiplier < 1.0) {
    return Status::InvalidArgument(
        "filter survivor_multiplier must be >= 1, got " +
        std::to_string(params.survivor_multiplier));
  }
  return Status::Ok();
}

InnerProductFilter::InnerProductFilter(const Matrix& data,
                                       const SketchFilterParams& params,
                                       Rng* rng)
    : input_dim_(data.cols()),
      buckets_(ResolveBuckets(params.buckets, data.cols())),
      params_(params) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK(!data.empty());
  IPS_CHECK(ValidateFilterParams(params).ok());
  copies_.reserve(params_.copies);
  for (std::size_t c = 0; c < params_.copies; ++c) {
    copies_.emplace_back(input_dim_, buckets_, rng);
  }
  const std::size_t sketch_dim = buckets_ * params_.copies;
  Matrix sketched(data.rows(), sketch_dim);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    std::span<double> out = sketched.Row(r);
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      const std::vector<double> y = copies_[c].Apply(data.Row(r));
      std::copy(y.begin(), y.end(), out.begin() + c * buckets_);
    }
  }
  sketched_ = std::move(sketched);
}

std::vector<double> InnerProductFilter::SketchQuery(
    std::span<const double> q) const {
  IPS_DCHECK(q.size() == input_dim_);
  std::vector<double> out(sketch_dim());
  const double inv_copies = 1.0 / static_cast<double>(copies_.size());
  for (std::size_t c = 0; c < copies_.size(); ++c) {
    const std::vector<double> y = copies_[c].Apply(q);
    for (std::size_t b = 0; b < buckets_; ++b) {
      out[c * buckets_ + b] = y[b] * inv_copies;
    }
  }
  return out;
}

void InnerProductFilter::EstimateAll(std::span<const double> sketched_query,
                                     std::span<double> out) const {
  IPS_DCHECK(sketched_query.size() == sketch_dim());
  kernels::MatVec(sketched_, sketched_query, out);
}

void InnerProductFilter::EstimateGathered(
    std::span<const double> sketched_query,
    std::span<const std::size_t> indices, std::span<double> out) const {
  IPS_DCHECK(sketched_query.size() == sketch_dim());
  kernels::GatherScores(sketched_, indices, sketched_query, out);
}

}  // namespace ips
