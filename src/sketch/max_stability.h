// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Max-stability linear sketch for ell_kappa norms, kappa >= 2 (our
// realization of the unpublished Andoni [5] construction Section 4.3
// relies on; see DESIGN.md "Substitutions").
//
// Principle: with u_1, ..., u_n i.i.d. Exp(1), the scaled maximum
//   max_j |x_j| / u_j^(1/kappa)
// has the distribution ||x||_kappa / E^(1/kappa) with E ~ Exp(1)
// (max-stability of the Frechet distribution), so its median is
// ||x||_kappa (1/ln 2)^(1/kappa). Composing the diagonal scaling
// D = diag(u_j^(-1/kappa)) with a CountSketch into
// m = O(n^(1-2/kappa) polylog n) buckets keeps the map linear and
// oblivious while the heaviest scaled coordinate survives bucketing
// (the ell_2 mass of Dx spread over m buckets is dominated by it).
// Taking the median over independent copies yields a constant-factor
// approximation of ||x||_kappa with high probability, which combined
// with ||x||_inf <= ||x||_kappa <= n^(1/kappa) ||x||_inf is exactly the
// O(n^(1/kappa))-approximation of ||x||_inf that the Section 4.3 MIPS
// data structure needs.

#ifndef IPS_SKETCH_MAX_STABILITY_H_
#define IPS_SKETCH_MAX_STABILITY_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "sketch/count_sketch.h"

namespace ips {

/// Parameters of the max-stability sketch.
struct MaxStabilityParams {
  /// The norm index kappa >= 2.
  double kappa = 4.0;
  /// Number of independent (D, S) copies medianed over.
  std::size_t copies = 5;
  /// Bucket-count multiplier: m = ceil(multiplier * n^(1-2/kappa)) + 1.
  double bucket_multiplier = 4.0;
};

/// One linear sketch Pi = [S_1 D_1; ...; S_R D_R] for vectors in R^n.
class MaxStabilitySketch {
 public:
  MaxStabilitySketch(std::size_t input_dim, const MaxStabilityParams& params,
                     Rng* rng);

  std::size_t input_dim() const { return input_dim_; }

  /// Rows of one copy (m).
  std::size_t buckets_per_copy() const { return buckets_per_copy_; }

  /// Total sketch dimension, copies * m.
  std::size_t sketch_dim() const {
    return buckets_per_copy_ * copies_.size();
  }

  /// Pi x: the concatenated copy outputs.
  std::vector<double> Apply(std::span<const double> x) const;

  /// Estimates ||x||_kappa from a sketched vector (median of per-copy
  /// ell_inf norms, bias-corrected by (ln 2)^(1/kappa)).
  double EstimateFromSketch(std::span<const double> sketched) const;

  /// Convenience: EstimateFromSketch(Apply(x)).
  double EstimateNorm(std::span<const double> x) const;

  /// Applies the sketch across the *rows* of `data[row_begin:row_end)`:
  /// returns the sketch_dim() x data.cols() matrix Pi * A whose product
  /// with a query q equals Apply of the vector (p_i^T q)_i. This is the
  /// A_s = Pi A precomputation of the Section 4.3 MIPS index.
  Matrix SketchDataMatrix(const Matrix& data, std::size_t row_begin,
                          std::size_t row_end) const;

  const MaxStabilityParams& params() const { return params_; }

 private:
  struct Copy {
    std::vector<double> scale;  // u_j^(-1/kappa)
    CountSketch count_sketch;
  };

  std::size_t input_dim_;
  MaxStabilityParams params_;
  std::size_t buckets_per_copy_;
  std::vector<Copy> copies_;
};

}  // namespace ips

#endif  // IPS_SKETCH_MAX_STABILITY_H_
