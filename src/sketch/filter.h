// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Dimension-axis CountSketch inner-product filter, after
// Pagh-Sivertsen's inner-product filters (arXiv:1909.10766): sketch
// every data row p_i once into m << d buckets (S p_i) and estimate
// <p_i, q> as the average of <S_c p_i, S_c q> over independent copies
// S_c. CountSketch is linear and self-adjoint in expectation
// (E[<Sp, Sq>] = <p, q>, Var <= ||p||^2 ||q||^2 / m), so the estimate
// pass costs sketch_dim()/d of an exact scan and feeds the two-stage
// scorer: rank all rows by the estimate, keep an oversampled survivor
// set, re-rank survivors with exact dots (core/top_k.h).
//
// This is the *filter* counterpart of the Section 4.3 argmax machinery
// in sketch_mips.h — same CountSketch building block, applied across
// the dimension axis (R^d -> R^m per row) instead of across the data
// axis (R^n -> R^m per coordinate of A q).

#ifndef IPS_SKETCH_FILTER_H_
#define IPS_SKETCH_FILTER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "rng/random.h"
#include "sketch/count_sketch.h"
#include "util/status.h"

namespace ips {

/// Tuning of the inner-product filter.
struct SketchFilterParams {
  /// Buckets per copy; 0 = auto (max(4, dim / 3), a ~3x cheaper
  /// estimate pass at default settings).
  std::size_t buckets = 0;
  /// Independent CountSketch copies averaged per estimate. More copies
  /// cut the estimator variance by 1/copies at proportional cost.
  std::size_t copies = 1;
  /// Survivor set size for top-k re-ranking: max(k * multiplier,
  /// floor), clamped to [k, n]. Oversampling is what turns a noisy
  /// estimator into high top-k recall.
  double survivor_multiplier = 16.0;
  std::size_t survivor_floor = 64;
};

/// Validates filter parameters (copies >= 1, multiplier >= 1, finite).
[[nodiscard]] Status ValidateFilterParams(const SketchFilterParams& params);

/// Immutable filter over a fixed data matrix: per-row sketches plus the
/// estimate kernels. Thread-safe for concurrent reads after
/// construction (no mutable state).
class InnerProductFilter {
 public:
  /// Sketches every row of `data`. Preconditions (validated params,
  /// non-empty finite data, non-null rng) are IPS_CHECKed; callers sit
  /// behind the index Create factories.
  InnerProductFilter(const Matrix& data, const SketchFilterParams& params,
                     Rng* rng);

  std::size_t rows() const { return sketched_.rows(); }
  std::size_t input_dim() const { return input_dim_; }
  std::size_t buckets_per_copy() const { return buckets_; }
  std::size_t sketch_dim() const { return sketched_.cols(); }
  const SketchFilterParams& params() const { return params_; }

  /// Cost of one estimate relative to one exact d-dimensional dot:
  /// sketch_dim / d. The planner prices the filter scan with this.
  double CostRatio() const {
    return static_cast<double>(sketch_dim()) /
           static_cast<double>(input_dim_);
  }

  /// Sketches a query (concatenated copy outputs, pre-divided by the
  /// copy count so one plain dot against a sketched row is the
  /// averaged estimate).
  std::vector<double> SketchQuery(std::span<const double> q) const;

  /// out[r] = estimated <data row r, q> for every row, given the
  /// sketched query. One dispatched MatVec over the sketched matrix.
  void EstimateAll(std::span<const double> sketched_query,
                   std::span<double> out) const;

  /// out[j] = estimated score of data row indices[j] (LSH candidate
  /// pruning).
  void EstimateGathered(std::span<const double> sketched_query,
                        std::span<const std::size_t> indices,
                        std::span<double> out) const;

  /// Bytes held by the sketched rows (footprint diagnostic).
  std::size_t MemoryBytes() const {
    return sketched_.rows() * sketched_.cols() * sizeof(double);
  }

 private:
  std::size_t input_dim_ = 0;
  std::size_t buckets_ = 0;
  SketchFilterParams params_;
  std::vector<CountSketch> copies_;
  Matrix sketched_;  // rows x sketch_dim, row-major
};

}  // namespace ips

#endif  // IPS_SKETCH_FILTER_H_
