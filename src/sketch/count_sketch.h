// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// CountSketch (Charikar-Chen-Farach-Colton): the linear map
// (Sx)_b = sum_{j : h(j) = b} sigma_j x_j with a pairwise hash h into m
// buckets and random signs sigma. Preserves individual heavy coordinates
// up to noise ||x||_2 / sqrt(m). Inner building block of the
// max-stability ell_kappa sketch (sketch/max_stability.h).

#ifndef IPS_SKETCH_COUNT_SKETCH_H_
#define IPS_SKETCH_COUNT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/random.h"

namespace ips {

/// One sampled CountSketch matrix S in {-1,0,+1}^(m x n), stored as the
/// bucket/sign assignment of each input coordinate.
class CountSketch {
 public:
  /// Sketch from `input_dim` coordinates into `num_buckets` buckets.
  CountSketch(std::size_t input_dim, std::size_t num_buckets, Rng* rng);

  std::size_t input_dim() const { return buckets_.size(); }
  std::size_t num_buckets() const { return num_buckets_; }

  /// y = S x.
  std::vector<double> Apply(std::span<const double> x) const;

  /// Bucket of coordinate j.
  std::size_t bucket(std::size_t j) const { return buckets_[j]; }

  /// Sign of coordinate j (+1/-1).
  double sign(std::size_t j) const { return signs_[j]; }

 private:
  std::size_t num_buckets_;
  std::vector<std::uint32_t> buckets_;
  std::vector<double> signs_;
};

}  // namespace ips

#endif  // IPS_SKETCH_COUNT_SKETCH_H_
