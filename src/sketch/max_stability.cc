#include "sketch/max_stability.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "linalg/kernels.h"
#include "util/check.h"

namespace ips {

MaxStabilitySketch::MaxStabilitySketch(std::size_t input_dim,
                                       const MaxStabilityParams& params,
                                       Rng* rng)
    : input_dim_(input_dim), params_(params) {
  IPS_CHECK(rng != nullptr);
  IPS_CHECK_GT(input_dim, 0u);
  IPS_CHECK_GE(params.kappa, 2.0);
  IPS_CHECK_GE(params.copies, 1u);
  IPS_CHECK_GT(params.bucket_multiplier, 0.0);
  const double n = static_cast<double>(input_dim);
  buckets_per_copy_ = static_cast<std::size_t>(std::ceil(
                          params.bucket_multiplier *
                          std::pow(n, 1.0 - 2.0 / params.kappa))) +
                      1;
  buckets_per_copy_ = std::min(buckets_per_copy_, input_dim);
  copies_.reserve(params.copies);
  for (std::size_t r = 0; r < params.copies; ++r) {
    Copy copy{std::vector<double>(input_dim),
              CountSketch(input_dim, buckets_per_copy_, rng)};
    for (std::size_t j = 0; j < input_dim; ++j) {
      double u;
      do {
        u = rng->NextExponential();
      } while (u <= 0.0);
      copy.scale[j] = std::pow(u, -1.0 / params.kappa);
    }
    copies_.push_back(std::move(copy));
  }
}

std::vector<double> MaxStabilitySketch::Apply(std::span<const double> x) const {
  IPS_CHECK_EQ(x.size(), input_dim_);
  std::vector<double> out;
  out.reserve(sketch_dim());
  std::vector<double> scaled(input_dim_);
  for (const Copy& copy : copies_) {
    for (std::size_t j = 0; j < input_dim_; ++j) {
      scaled[j] = copy.scale[j] * x[j];
    }
    const std::vector<double> bucketed = copy.count_sketch.Apply(scaled);
    out.insert(out.end(), bucketed.begin(), bucketed.end());
  }
  return out;
}

double MaxStabilitySketch::EstimateFromSketch(
    std::span<const double> sketched) const {
  IPS_CHECK_EQ(sketched.size(), sketch_dim());
  std::vector<double> estimates;
  estimates.reserve(copies_.size());
  for (std::size_t r = 0; r < copies_.size(); ++r) {
    estimates.push_back(kernels::LInfNorm(
        sketched.subspan(r * buckets_per_copy_, buckets_per_copy_)));
  }
  std::sort(estimates.begin(), estimates.end());
  const double median = estimates[estimates.size() / 2];
  return median * std::pow(std::numbers::ln2, 1.0 / params_.kappa);
}

double MaxStabilitySketch::EstimateNorm(std::span<const double> x) const {
  return EstimateFromSketch(Apply(x));
}

Matrix MaxStabilitySketch::SketchDataMatrix(const Matrix& data,
                                            std::size_t row_begin,
                                            std::size_t row_end) const {
  IPS_CHECK_LE(row_begin, row_end);
  IPS_CHECK_LE(row_end, data.rows());
  IPS_CHECK_EQ(row_end - row_begin, input_dim_);
  Matrix sketched(sketch_dim(), data.cols());
  for (std::size_t r = 0; r < copies_.size(); ++r) {
    const Copy& copy = copies_[r];
    for (std::size_t j = 0; j < input_dim_; ++j) {
      const double weight =
          copy.count_sketch.sign(j) * copy.scale[j];
      const std::size_t out_row =
          r * buckets_per_copy_ + copy.count_sketch.bucket(j);
      const std::span<const double> in = data.Row(row_begin + j);
      const std::span<double> out = sketched.Row(out_row);
      for (std::size_t col = 0; col < in.size(); ++col) {
        out[col] += weight * in[col];
      }
    }
  }
  return sketched;
}

}  // namespace ips
