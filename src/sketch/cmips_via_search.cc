#include "sketch/cmips_via_search.h"

#include <cmath>
#include <vector>

#include "sketch/sketch_mips.h"
#include "util/check.h"

namespace ips {

CmipsResult SolveCmipsViaSearch(const UnsignedSearchOracle& oracle,
                                std::span<const double> query, double s,
                                double c, double gamma) {
  IPS_CHECK_GT(s, 0.0);
  IPS_CHECK_GT(gamma, 0.0);
  IPS_CHECK_GT(c, 0.0);
  IPS_CHECK_LT(c, 1.0);
  const std::size_t max_steps = CmipsQueryScalingSteps(s, c, gamma);
  CmipsResult result;
  std::vector<double> scaled(query.begin(), query.end());
  const double inv_c = 1.0 / c;
  for (std::size_t step = 0; step <= max_steps; ++step) {
    ++result.probes;
    const auto found = oracle(scaled);
    if (found.has_value()) {
      result.index = found;
      return result;
    }
    for (double& v : scaled) v *= inv_c;
  }
  return result;
}

}  // namespace ips
