// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The only file in the tree that touches raw POSIX I/O (enforced by the
// ipslint rule "raw-io"): everything above speaks Status and spans.
//
//  * FileWriter  -- sequential writer with atomic publication: bytes go
//    to "<path>.tmp.<pid>", Commit() fsyncs and rename()s into place, so
//    a reader never observes a half-written snapshot and a crash leaves
//    the previous snapshot (if any) intact.
//  * FileReader  -- positional (pread) reads; no shared cursor, so block
//    readers can stream disjoint ranges without seeking.
//  * MappedFile  -- read-only mmap of a whole file, RAII-unmapped.
//
// Failpoints: "storage/open-write", "storage/write", "storage/rename",
// "storage/open-read", "storage/read", "storage/mmap".
//
// Thread-safety: no locks by design (audited, ipslint lock-order
// pass). FileWriter is single-owner (one thread builds one snapshot);
// FileReader's pread-based ReadAt keeps no cursor, so concurrent reads
// of disjoint ranges through one reader are safe; MappedFile is
// immutable after Open.

#ifndef IPS_STORAGE_FILE_H_
#define IPS_STORAGE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/status.h"

namespace ips {
namespace storage {

/// Creates `path` (one level) if it does not exist.
Status EnsureDirectory(const std::string& path);

/// Current process peak resident set size in bytes (getrusage), the
/// measure the out-of-core join's budget tests assert against. Returns 0
/// where the platform reports nothing useful.
std::size_t PeakRssBytes();

/// Atomic sequential file writer. Create -> Write*/WriteAt -> Commit.
/// Destruction without Commit unlinks the temporary file.
class FileWriter {
 public:
  /// Opens "<path>.tmp.<pid>" for writing (truncating any leftover).
  [[nodiscard]] static StatusOr<FileWriter> Create(const std::string& path);

  FileWriter(FileWriter&& other) noexcept;
  FileWriter& operator=(FileWriter&& other) noexcept;
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  ~FileWriter();

  /// Appends `bytes` at the current offset.
  [[nodiscard]] Status Write(std::span<const unsigned char> bytes);

  /// Overwrites `bytes` at absolute `offset` (header patching at
  /// Commit); does not move the append cursor.
  [[nodiscard]] Status WriteAt(std::uint64_t offset,
                               std::span<const unsigned char> bytes);

  /// Bytes appended so far (the current append offset).
  std::uint64_t offset() const { return offset_; }

  /// fsync + close + rename the temporary onto the target path. After
  /// Commit the writer is inert; on failure the temporary is unlinked
  /// and the previous target file is untouched.
  [[nodiscard]] Status Commit();

 private:
  FileWriter(int fd, std::string path, std::string tmp_path)
      : fd_(fd), path_(std::move(path)), tmp_path_(std::move(tmp_path)) {}

  void Abandon();

  int fd_ = -1;
  std::uint64_t offset_ = 0;
  std::string path_;
  std::string tmp_path_;
};

/// Positional reader over an immutable snapshot file.
class FileReader {
 public:
  [[nodiscard]] static StatusOr<FileReader> Open(const std::string& path);

  FileReader(FileReader&& other) noexcept;
  FileReader& operator=(FileReader&& other) noexcept;
  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;
  ~FileReader();

  /// Reads exactly `out.size()` bytes at `offset`; a short read (the
  /// file ends inside the range) is kDataLoss, not a partial success.
  [[nodiscard]] Status ReadAt(std::uint64_t offset,
                              std::span<unsigned char> out) const;

  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  FileReader(int fd, std::uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
};

/// Read-only memory mapping of a whole file.
class MappedFile {
 public:
  [[nodiscard]] static StatusOr<MappedFile> Map(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const unsigned char> bytes() const {
    return {static_cast<const unsigned char*>(base_), size_};
  }
  const std::string& path() const { return path_; }

 private:
  MappedFile(void* base, std::size_t size, std::string path)
      : base_(base), size_(size), path_(std::move(path)) {}

  void* base_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace storage
}  // namespace ips

#endif  // IPS_STORAGE_FILE_H_
