// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// The on-disk snapshot format (DESIGN.md §12): one file holding a fixed
// 32-byte header, N sections of payload bytes, and a section table. All
// integers are little-endian; every section carries a CRC32 so torn
// writes and bit rot surface as kDataLoss at load time instead of as
// wrong answers at query time.
//
//   [ FileHeader (32 B) ]
//   [ section 0 payload ]   <- 64-byte aligned offset
//   [ section 1 payload ]   <- 64-byte aligned offset
//   ...
//   [ section table: N x SectionEntry (32 B each) ]
//
// The header is written last (the file is assembled under a temporary
// name and renamed into place, so readers only ever see complete
// snapshots); its own CRC covers the preceding header fields. Section
// payloads are aligned to kSectionAlignment so a page-aligned mmap of
// the file yields 64-byte-aligned payload pointers — the DSET section
// serves query traffic zero-copy through Matrix::View.

#ifndef IPS_STORAGE_FORMAT_H_
#define IPS_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace ips {
namespace storage {

/// First 8 bytes of every snapshot file.
inline constexpr char kMagic[8] = {'I', 'P', 'S', 'S', 'N', 'A', 'P', '1'};

/// Format version this build writes (and the only one it reads).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Section payloads start at multiples of this (so mmap'ed payloads are
/// cacheline/SIMD aligned) and the DSET subheader is exactly this long.
inline constexpr std::size_t kSectionAlignment = 64;

/// Header `flags` value: records the writer's byte order (the format is
/// little-endian; a big-endian writer would need byte swapping, which
/// this build does not implement and the reader rejects).
inline constexpr std::uint32_t kFlagLittleEndian = 1;

/// Section identifiers (fourcc, little-endian u32).
constexpr std::uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

inline constexpr std::uint32_t kSectionMeta = FourCc('M', 'E', 'T', 'A');
inline constexpr std::uint32_t kSectionDataset = FourCc('D', 'S', 'E', 'T');
inline constexpr std::uint32_t kSectionProfile = FourCc('P', 'R', 'O', 'F');
inline constexpr std::uint32_t kSectionCalibration =
    FourCc('C', 'A', 'L', 'B');
inline constexpr std::uint32_t kSectionTree = FourCc('T', 'R', 'E', 'E');
inline constexpr std::uint32_t kSectionLshTables = FourCc('L', 'S', 'H', 'T');
inline constexpr std::uint32_t kSectionSketch = FourCc('S', 'K', 'C', 'H');

/// "META", "DSET", ... for messages; "0x…" for unknown ids.
std::string SectionName(std::uint32_t id);

/// Fixed 32-byte file header.
struct FileHeader {
  char magic[8];                      // kMagic
  std::uint32_t version = 0;          // kFormatVersion
  std::uint32_t section_count = 0;
  std::uint64_t section_table_offset = 0;
  std::uint32_t flags = 0;            // kFlagLittleEndian
  std::uint32_t header_crc = 0;       // CRC32 of the 28 bytes above
};
static_assert(sizeof(FileHeader) == 32, "FileHeader must pack to 32 bytes");

/// One section-table row (32 bytes).
struct SectionEntry {
  std::uint32_t id = 0;        // fourcc
  std::uint32_t version = 0;   // per-section payload version
  std::uint64_t offset = 0;    // payload start, multiple of 64
  std::uint64_t size = 0;      // payload bytes
  std::uint32_t crc32 = 0;     // CRC32 of the payload
  std::uint32_t reserved = 0;
};
static_assert(sizeof(SectionEntry) == 32, "SectionEntry must pack to 32 bytes");

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`
/// continued from `seed` (pass 0 to start; chain calls for streams).
std::uint32_t Crc32(std::span<const unsigned char> bytes,
                    std::uint32_t seed = 0);

/// CRC of the 28 CRC-covered header bytes.
std::uint32_t HeaderCrc(const FileHeader& header);

/// Offset rounded up to the next multiple of kSectionAlignment.
constexpr std::uint64_t AlignUp(std::uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

/// Checks magic, version, flags, and the header's own CRC; DataLoss on a
/// bad CRC, InvalidArgument on a wrong magic/version/byte order.
/// `path` labels the messages.
Status ValidateHeader(const FileHeader& header, const std::string& path);

// ---------------------------------------------------------------------
// Little-endian payload (de)serialization. Small structured sections
// (META, PROF, CALB, TREE, LSHT headers) are built through these; the
// bulk DSET doubles are written raw.
// ---------------------------------------------------------------------

/// Append-only little-endian byte sink.
class PayloadWriter {
 public:
  void PutU32(std::uint32_t v) { PutBytes(&v, sizeof(v)); }
  void PutU64(std::uint64_t v) { PutBytes(&v, sizeof(v)); }
  void PutI32(std::int32_t v) { PutBytes(&v, sizeof(v)); }
  void PutI64(std::int64_t v) { PutBytes(&v, sizeof(v)); }
  void PutDouble(double v) { PutBytes(&v, sizeof(v)); }
  void PutDoubles(std::span<const double> v) {
    PutBytes(v.data(), v.size() * sizeof(double));
  }

  std::span<const unsigned char> bytes() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

 private:
  void PutBytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    buffer_.insert(buffer_.end(), b, b + n);
  }

  std::vector<unsigned char> buffer_;
};

/// Bounds-checked little-endian cursor over a section payload. Every Get
/// reports truncation as kDataLoss naming the section, so a short read
/// inside a CRC-valid section (a writer bug or version skew) cannot walk
/// past the payload.
class PayloadReader {
 public:
  PayloadReader(std::span<const unsigned char> bytes, std::string section)
      : bytes_(bytes), section_(std::move(section)) {}

  Status GetU32(std::uint32_t* v) { return GetBytes(v, sizeof(*v)); }
  Status GetU64(std::uint64_t* v) { return GetBytes(v, sizeof(*v)); }
  Status GetI32(std::int32_t* v) { return GetBytes(v, sizeof(*v)); }
  Status GetI64(std::int64_t* v) { return GetBytes(v, sizeof(*v)); }
  Status GetDouble(double* v) { return GetBytes(v, sizeof(*v)); }
  Status GetDoubles(std::span<double> v) {
    return GetBytes(v.data(), v.size() * sizeof(double));
  }
  /// Bulk little-endian u32 read (one bounds check for the whole run —
  /// bucket arrays are read this way, not one entry at a time).
  Status GetU32s(std::span<std::uint32_t> v) {
    return GetBytes(v.data(), v.size() * sizeof(std::uint32_t));
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status GetBytes(void* out, std::size_t n);

  std::span<const unsigned char> bytes_;
  std::string section_;
  std::size_t pos_ = 0;
};

}  // namespace storage
}  // namespace ips

#endif  // IPS_STORAGE_FORMAT_H_
