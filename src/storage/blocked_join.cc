#include "storage/blocked_join.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "rng/random.h"
#include "storage/snapshot.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ips {
namespace storage {
namespace {

// Working-set multiple of one resident block: the data block, the query
// block, and the per-pair hash tables (bucket maps hold ~4 bytes per
// (row, table) entry plus map overhead, bounded by a few times the
// block itself for the l values the library uses).
constexpr std::size_t kWorkingSetBlocks = 6;

std::size_t ResolveBlockRows(const BlockedJoinOptions& options,
                             std::size_t cols) {
  if (options.block_rows > 0) return options.block_rows;
  const std::size_t row_bytes = std::max<std::size_t>(1, cols * sizeof(double));
  const std::size_t block_bytes =
      options.memory_budget_bytes / kWorkingSetBlocks;
  return std::max<std::size_t>(1, block_bytes / row_bytes);
}

}  // namespace

StatusOr<BucketJoinResult> BlockedBucketJoin(const LshFamily& family,
                                             const std::string& data_path,
                                             const std::string& queries_path,
                                             const BlockedJoinOptions& options,
                                             BlockedJoinStats* stats) {
  IPS_FAILPOINT("storage/blocked-join");
  if (options.params.k < 1 || options.params.l < 1) {
    return Status::InvalidArgument(
        "blocked join needs k >= 1 and l >= 1, got k=" +
        std::to_string(options.params.k) + ", l=" +
        std::to_string(options.params.l));
  }
  if (options.memory_budget_bytes == 0) {
    return Status::InvalidArgument("blocked join memory budget must be > 0");
  }
  if (!std::isfinite(options.s_threshold) ||
      !std::isfinite(options.cs_threshold)) {
    return Status::InvalidArgument("join thresholds must be finite");
  }
  if (options.cs_threshold > options.s_threshold) {
    return Status::InvalidArgument(
        "cs threshold " + std::to_string(options.cs_threshold) +
        " exceeds s threshold " + std::to_string(options.s_threshold));
  }

  auto data_reader =
      MatrixBlockReader::Open(data_path, options.verify_checksums);
  IPS_RETURN_IF_ERROR(data_reader.status());
  auto query_reader =
      MatrixBlockReader::Open(queries_path, options.verify_checksums);
  IPS_RETURN_IF_ERROR(query_reader.status());

  if (data_reader->rows() == 0 || query_reader->rows() == 0) {
    return Status::InvalidArgument("blocked join inputs must be non-empty");
  }
  if (data_reader->cols() != query_reader->cols()) {
    return Status::InvalidArgument(
        "data dimension " + std::to_string(data_reader->cols()) +
        " != query dimension " + std::to_string(query_reader->cols()));
  }
  if (data_reader->cols() != family.dim()) {
    return Status::InvalidArgument(
        "snapshot dimension " + std::to_string(data_reader->cols()) +
        " != lsh family dimension " + std::to_string(family.dim()));
  }

  const std::size_t block_rows = ResolveBlockRows(options,
                                                  data_reader->cols());
  BlockedJoinStats local;
  local.data_rows = data_reader->rows();
  local.query_rows = query_reader->rows();
  local.block_rows = block_rows;
  local.data_blocks = (local.data_rows + block_rows - 1) / block_rows;
  local.query_blocks = (local.query_rows + block_rows - 1) / block_rows;

  BucketJoinResult result;
  result.per_query.resize(local.query_rows);
  std::size_t candidate_pairs = 0;
  std::size_t verified_pairs = 0;
  std::size_t duplicate_pairs = 0;

  // Blocks are reused across iterations (ReadRows only reallocates on a
  // shape change), so the steady-state footprint is the two blocks plus
  // the per-pair tables LshBucketJoin builds and frees.
  Matrix query_block;
  Matrix data_block;
  for (std::size_t q0 = 0; q0 < local.query_rows; q0 += block_rows) {
    const std::size_t qn = std::min(block_rows, local.query_rows - q0);
    IPS_RETURN_IF_ERROR(query_reader->ReadRows(q0, qn, &query_block));
    local.bytes_read += qn * query_reader->cols() * sizeof(double);
    for (std::size_t d0 = 0; d0 < local.data_rows; d0 += block_rows) {
      const std::size_t dn = std::min(block_rows, local.data_rows - d0);
      IPS_RETURN_IF_ERROR(data_reader->ReadRows(d0, dn, &data_block));
      local.bytes_read += dn * data_reader->cols() * sizeof(double);
      ++local.block_pairs;

      // Fresh Rng per pair: table t's hash function is identical in
      // every block pair, which is what makes the blocked union equal
      // the monolithic join (see header).
      Rng rng(options.seed);
      const BucketJoinResult pair = LshBucketJoin(
          family, data_block, data_block, query_block, query_block,
          options.s_threshold, options.cs_threshold, options.is_signed,
          options.params, &rng);
      candidate_pairs += static_cast<std::size_t>(
          pair.metrics.Get("lsh.join.candidate_pairs"));
      verified_pairs += static_cast<std::size_t>(
          pair.metrics.Get("lsh.join.verified_pairs"));
      duplicate_pairs += static_cast<std::size_t>(
          pair.metrics.Get("lsh.join.duplicate_pairs"));

      for (std::size_t qi = 0; qi < qn; ++qi) {
        const auto& pair_best = pair.per_query[qi];
        if (!pair_best.has_value()) continue;
        const std::size_t global_index = d0 + pair_best->first;
        auto& best = result.per_query[q0 + qi];
        if (!best.has_value() || pair_best->second > best->second ||
            (pair_best->second == best->second &&
             global_index < best->first)) {
          best = std::make_pair(global_index, pair_best->second);
        }
      }
    }
  }

  result.metrics.Set("lsh.join.candidate_pairs", candidate_pairs);
  result.metrics.Set("lsh.join.verified_pairs", verified_pairs);
  result.metrics.Set("lsh.join.duplicate_pairs", duplicate_pairs);
  static Counter* const runs =
      MetricsRegistry::Global().GetCounter("storage.blocked_join.runs");
  static Counter* const pairs =
      MetricsRegistry::Global().GetCounter("storage.blocked_join.block_pairs");
  static Counter* const bytes =
      MetricsRegistry::Global().GetCounter("storage.blocked_join.bytes_read");
  runs->Increment();
  pairs->Add(local.block_pairs);
  bytes->Add(local.bytes_read);
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace storage
}  // namespace ips
