#include "storage/format.h"

#include <array>
#include <cstdio>

namespace ips {
namespace storage {
namespace {

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table and
// table[j][b] is the CRC of byte b followed by j zero bytes, letting the
// hot loop fold 8 input bytes per iteration (~8x the bytewise rate —
// the difference between a snapshot load that is CRC-bound and one that
// is disk-bound).
std::array<std::array<std::uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables[0][i];
    for (std::size_t j = 1; j < 8; ++j) {
      crc = tables[0][crc & 0xFFu] ^ (crc >> 8);
      tables[j][i] = crc;
    }
  }
  return tables;
}

}  // namespace

std::uint32_t Crc32(std::span<const unsigned char> bytes,
                    std::uint32_t seed) {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      MakeCrcTables();
  const auto& t = tables;
  std::uint32_t crc = ~seed;
  const unsigned char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    // The format is little-endian-only (kFlagLittleEndian), so the
    // 32-bit load below matches the byte order the tables assume.
    std::uint32_t lo;
    std::memcpy(&lo, p, sizeof(lo));
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

std::uint32_t HeaderCrc(const FileHeader& header) {
  unsigned char bytes[sizeof(FileHeader)];
  std::memcpy(bytes, &header, sizeof(header));
  return Crc32({bytes, sizeof(FileHeader) - sizeof(header.header_crc)});
}

std::string SectionName(std::uint32_t id) {
  std::string name(4, '\0');
  for (int i = 0; i < 4; ++i) {
    name[i] = static_cast<char>((id >> (8 * i)) & 0xFFu);
  }
  for (char c : name) {
    if (c < ' ' || c > '~') {
      char hex[16];
      std::snprintf(hex, sizeof(hex), "0x%08x", id);
      return hex;
    }
  }
  return name;
}

Status ValidateHeader(const FileHeader& header, const std::string& path) {
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not an ipsjoin snapshot " +
                                   "(bad magic)");
  }
  if (header.header_crc != HeaderCrc(header)) {
    return Status::DataLoss(path + ": snapshot header failed its CRC");
  }
  if (header.version != kFormatVersion) {
    return Status::InvalidArgument(
        path + ": unsupported snapshot format version " +
        std::to_string(header.version) + " (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  }
  if (header.flags != kFlagLittleEndian) {
    return Status::InvalidArgument(
        path + ": snapshot was written with unsupported flags " +
        std::to_string(header.flags) + " (expected little-endian layout)");
  }
  return Status::Ok();
}

Status PayloadReader::GetBytes(void* out, std::size_t n) {
  if (pos_ + n > bytes_.size()) {
    return Status::DataLoss(
        "section " + section_ + " is truncated: needed " + std::to_string(n) +
        " bytes at offset " + std::to_string(pos_) + " of " +
        std::to_string(bytes_.size()));
  }
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
  return Status::Ok();
}

}  // namespace storage
}  // namespace ips
