// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Out-of-core bucket join: joins two point sets that live in matrix
// snapshot files and may be far larger than RAM. Rows are streamed in
// memory-budgeted blocks and every (query block, data block) pair runs
// through the in-memory LshBucketJoin driver; per-query bests merge
// across block pairs under the project-wide deterministic ordering
// (score descending, then smaller global data index).
//
// Determinism: every block pair reseeds a fresh Rng(options.seed), so
// table t draws the *same* concatenated hash function in every block
// pair — and a (data, query) pair collides in some table of the blocked
// join iff it collides in the same table of a monolithic LshBucketJoin
// run with Rng(options.seed). The blocked result therefore equals the
// monolithic result exactly (tests/storage_test.cc holds it to that),
// while peak memory stays within the block budget instead of O(n).

#ifndef IPS_STORAGE_BLOCKED_JOIN_H_
#define IPS_STORAGE_BLOCKED_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "lsh/bucket_join.h"
#include "lsh/lsh_family.h"
#include "lsh/tables.h"
#include "util/status.h"

namespace ips {
namespace storage {

/// Tuning of one blocked join run.
struct BlockedJoinOptions {
  /// Hard budget for the join's working set (both resident blocks plus
  /// the per-pair hash tables). The blocked-join RSS test asserts the
  /// process peak stays within this.
  std::size_t memory_budget_bytes = 64u << 20;
  /// Rows per block; 0 derives the largest block whose working set
  /// (data block + query block + bucket tables, ~6x one block's bytes)
  /// fits the budget.
  std::size_t block_rows = 0;
  /// (K, L) amplification of every block pair's tables.
  LshTableParams params;
  /// Join thresholds and score mode (as LshBucketJoin).
  double s_threshold = 0.0;
  double cs_threshold = 0.0;
  bool is_signed = true;
  /// Seed of the per-block-pair hash function draws (see header note).
  std::uint64_t seed = 2026;
  /// Verify the snapshots' DSET checksums (streaming, bounded memory)
  /// before joining.
  bool verify_checksums = true;
};

/// Work accounting of one blocked join run.
struct BlockedJoinStats {
  std::size_t data_rows = 0;
  std::size_t query_rows = 0;
  std::size_t block_rows = 0;   // resolved block size
  std::size_t data_blocks = 0;
  std::size_t query_blocks = 0;
  std::size_t block_pairs = 0;
  /// Snapshot bytes streamed from disk across all block reads.
  std::size_t bytes_read = 0;
};

/// Joins the matrix snapshots at `data_path` and `queries_path` under
/// `family` (which hashes original rows — pass a TransformedLshFamily
/// for IPS). Scores are signed or absolute inner products per
/// options.is_signed; the result indexes rows of the data snapshot
/// globally. Failpoint: "storage/blocked-join".
[[nodiscard]] StatusOr<BucketJoinResult> BlockedBucketJoin(
    const LshFamily& family, const std::string& data_path,
    const std::string& queries_path, const BlockedJoinOptions& options,
    BlockedJoinStats* stats = nullptr);

}  // namespace storage
}  // namespace ips

#endif  // IPS_STORAGE_BLOCKED_JOIN_H_
