#include "storage/file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/failpoint.h"

namespace ips {
namespace storage {
namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::Internal(Errno("cannot create directory", path));
}

std::size_t PeakRssBytes() {
  struct rusage usage;
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

// ---------------------------------------------------------------------
// FileWriter
// ---------------------------------------------------------------------

StatusOr<FileWriter> FileWriter::Create(const std::string& path) {
  IPS_FAILPOINT("storage/open-write");
  std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(Errno("cannot open for writing", tmp_path));
  }
  return FileWriter(fd, path, std::move(tmp_path));
}

FileWriter::FileWriter(FileWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      offset_(other.offset_),
      path_(std::move(other.path_)),
      tmp_path_(std::move(other.tmp_path_)) {}

FileWriter& FileWriter::operator=(FileWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    fd_ = std::exchange(other.fd_, -1);
    offset_ = other.offset_;
    path_ = std::move(other.path_);
    tmp_path_ = std::move(other.tmp_path_);
  }
  return *this;
}

FileWriter::~FileWriter() { Abandon(); }

void FileWriter::Abandon() {
  if (fd_ < 0) return;
  ::close(fd_);
  ::unlink(tmp_path_.c_str());
  fd_ = -1;
}

Status FileWriter::Write(std::span<const unsigned char> bytes) {
  IPS_RETURN_IF_ERROR(WriteAt(offset_, bytes));
  offset_ += bytes.size();
  return Status::Ok();
}

Status FileWriter::WriteAt(std::uint64_t offset,
                           std::span<const unsigned char> bytes) {
  IPS_FAILPOINT("storage/write");
  if (fd_ < 0) {
    return Status::FailedPrecondition("write on a committed FileWriter");
  }
  const unsigned char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n =
        ::pwrite(fd_, p, left, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write failed on", tmp_path_));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return Status::Ok();
}

Status FileWriter::Commit() {
  IPS_FAILPOINT("storage/rename");
  if (fd_ < 0) {
    return Status::FailedPrecondition("Commit on a committed FileWriter");
  }
  if (::fsync(fd_) != 0) {
    const Status status = Status::Internal(Errno("fsync failed on", tmp_path_));
    Abandon();
    return status;
  }
  ::close(fd_);
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const Status status =
        Status::Internal(Errno("cannot publish snapshot at", path_));
    ::unlink(tmp_path_.c_str());
    return status;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// FileReader
// ---------------------------------------------------------------------

StatusOr<FileReader> FileReader::Open(const std::string& path) {
  IPS_FAILPOINT("storage/open-read");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at " + path);
    }
    return Status::Internal(Errno("cannot open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::Internal(Errno("cannot stat", path));
    ::close(fd);
    return status;
  }
  return FileReader(fd, static_cast<std::uint64_t>(st.st_size), path);
}

FileReader::FileReader(FileReader&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(other.size_),
      path_(std::move(other.path_)) {}

FileReader& FileReader::operator=(FileReader&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    size_ = other.size_;
    path_ = std::move(other.path_);
  }
  return *this;
}

FileReader::~FileReader() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileReader::ReadAt(std::uint64_t offset,
                          std::span<unsigned char> out) const {
  IPS_FAILPOINT("storage/read");
  if (offset + out.size() > size_) {
    return Status::DataLoss(
        path_ + " is truncated: need bytes [" + std::to_string(offset) +
        ", " + std::to_string(offset + out.size()) + ") but the file has " +
        std::to_string(size_));
  }
  unsigned char* p = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    const ssize_t n = ::pread(fd_, p, left, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("read failed on", path_));
    }
    if (n == 0) {
      return Status::DataLoss(path_ + " ended early at offset " +
                              std::to_string(offset));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------

StatusOr<MappedFile> MappedFile::Map(const std::string& path) {
  IPS_FAILPOINT("storage/mmap");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at " + path);
    }
    return Status::Internal(Errno("cannot open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::Internal(Errno("cannot stat", path));
    ::close(fd);
    return status;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::DataLoss(path + " is empty");
  }
  // The mapping keeps its pages after close; the fd is only needed here.
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::Internal(Errno("cannot mmap", path));
  }
  return MappedFile(base, size, path);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(other.size_),
      path_(std::move(other.path_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, size_);
    base_ = std::exchange(other.base_, nullptr);
    size_ = other.size_;
    path_ = std::move(other.path_);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

}  // namespace storage
}  // namespace ips
