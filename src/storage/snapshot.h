// Copyright 2026 The ipsjoin Authors.
// Licensed under the Apache License, Version 2.0.
//
// Snapshot files: the writer/reader pair over the sectioned format of
// format.h, plus the Matrix-specific helpers the rest of the tree uses.
//
// Writing is atomic (FileWriter tmp + rename): a crash mid-save leaves
// any previous snapshot untouched. Reading is checksummed: every load
// path verifies the per-section CRC32 (optionally skippable on the mmap
// path where the caller wants lazy page-in) and damaged bytes surface
// as kDataLoss naming the section.
//
// A Matrix lives in a DSET section as a 64-byte subheader holding the
// column count followed by the row-major doubles; the row count is
// derived from the section size, so the streaming writer never patches
// the subheader and the section CRC stays a single forward pass. The
// payload starts 64-byte aligned, so MappedSnapshot::MapMatrixSection
// can serve the doubles zero-copy through Matrix::View.
//
// Thread-safety: deliberately lock-free (audited, ipslint lock-order
// pass). SnapshotWriter/SnapshotReader and the Matrix helpers are
// single-owner value types — writer state (open section, running CRC,
// offsets) is confined to the constructing thread, never shared, so
// there is nothing for IPS_GUARDED_BY to guard. MappedSnapshot is
// immutable after Map() and safe to share across threads via
// shared_ptr (how ShardedEngine hands one snapshot to every shard).

#ifndef IPS_STORAGE_SNAPSHOT_H_
#define IPS_STORAGE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "storage/file.h"
#include "storage/format.h"
#include "util/status.h"

namespace ips {
namespace storage {

/// Bytes of the DSET subheader (= kSectionAlignment so the doubles that
/// follow stay aligned).
inline constexpr std::size_t kMatrixSubheaderBytes = kSectionAlignment;

/// Sequential snapshot writer. Whole sections go through WriteSection;
/// the bulk dataset streams through BeginSection/Append/EndSection with
/// a running CRC. Finish writes the section table and header and
/// publishes the file atomically.
class SnapshotWriter {
 public:
  [[nodiscard]] static StatusOr<SnapshotWriter> Create(
      const std::string& path);

  SnapshotWriter(SnapshotWriter&&) = default;
  SnapshotWriter& operator=(SnapshotWriter&&) = default;

  /// Appends one complete section.
  [[nodiscard]] Status WriteSection(std::uint32_t id, std::uint32_t version,
                                    std::span<const unsigned char> payload);

  /// Opens a streaming section; Append in any chunking, then EndSection.
  [[nodiscard]] Status BeginSection(std::uint32_t id, std::uint32_t version);
  [[nodiscard]] Status Append(std::span<const unsigned char> bytes);
  [[nodiscard]] Status EndSection();

  /// Section table + header + atomic publish. The writer is inert after.
  [[nodiscard]] Status Finish();

 private:
  explicit SnapshotWriter(FileWriter file) : file_(std::move(file)) {}

  /// Zero-pads the file to the next section-aligned offset.
  Status PadToAlignment();

  FileWriter file_;
  std::vector<SectionEntry> sections_;
  bool in_section_ = false;
  std::uint32_t running_crc_ = 0;
};

/// Snapshot reader over a FileReader: parses and validates the header
/// and section table at Open, verifies section CRCs on read.
class SnapshotReader {
 public:
  [[nodiscard]] static StatusOr<SnapshotReader> Open(const std::string& path);

  SnapshotReader(SnapshotReader&&) = default;
  SnapshotReader& operator=(SnapshotReader&&) = default;

  const std::vector<SectionEntry>& sections() const { return sections_; }

  /// The entry for `id`, or null when the snapshot has no such section.
  const SectionEntry* Find(std::uint32_t id) const;

  /// Reads section `id` fully and verifies its CRC. NotFound when the
  /// section is absent, kDataLoss on a checksum mismatch.
  [[nodiscard]] StatusOr<std::vector<unsigned char>> ReadSection(
      std::uint32_t id) const;

  /// Streaming CRC verification of one section through a bounded
  /// buffer (no allocation proportional to the section).
  [[nodiscard]] Status VerifySection(const SectionEntry& entry) const;

  /// VerifySection over every section in the table.
  [[nodiscard]] Status VerifyAllSections() const;

  const FileReader& file() const { return file_; }
  const std::string& path() const { return file_.path(); }

 private:
  explicit SnapshotReader(FileReader file) : file_(std::move(file)) {}

  FileReader file_;
  std::vector<SectionEntry> sections_;
};

/// Geometry of a Matrix stored in a DSET-layout section.
struct MatrixSectionInfo {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  /// Absolute file offset of the first double.
  std::uint64_t doubles_offset = 0;
};

/// Parses and validates the subheader of matrix section `entry`.
[[nodiscard]] StatusOr<MatrixSectionInfo> ParseMatrixSection(
    const SnapshotReader& reader, const SectionEntry& entry);

/// Whole-file mmap of a snapshot, shared by every Matrix::View serving
/// from it (hold the shared_ptr as long as any view lives).
class MappedSnapshot {
 public:
  /// Maps `path` and parses the header and section table. When
  /// `verify_checksums` is set every section CRC is verified up front
  /// (touching every page once); otherwise pages fault in lazily and
  /// only the header and table are validated.
  [[nodiscard]] static StatusOr<std::shared_ptr<MappedSnapshot>> Map(
      const std::string& path, bool verify_checksums = true);

  const std::vector<SectionEntry>& sections() const { return sections_; }
  const SectionEntry* Find(std::uint32_t id) const;

  /// The mapped payload bytes of `entry`.
  std::span<const unsigned char> SectionBytes(const SectionEntry& entry) const;

  /// Zero-copy Matrix::View over the doubles of matrix section `id`.
  /// The view is valid while this MappedSnapshot lives.
  [[nodiscard]] StatusOr<Matrix> MapMatrixSection(std::uint32_t id) const;

  const std::string& path() const { return file_.path(); }

 private:
  explicit MappedSnapshot(MappedFile file) : file_(std::move(file)) {}

  MappedFile file_;
  std::vector<SectionEntry> sections_;
};

// ---------------------------------------------------------------------
// Matrix snapshot conveniences: a single-DSET snapshot file.
// ---------------------------------------------------------------------

/// Saves `matrix` as a one-section snapshot at `path` (atomic).
[[nodiscard]] Status SaveMatrixSnapshot(const Matrix& matrix,
                                        const std::string& path);

/// Loads a matrix snapshot into an owning Matrix, verifying the CRC.
/// The doubles are read straight into the matrix storage (no transient
/// second copy of the dataset).
[[nodiscard]] StatusOr<Matrix> LoadMatrixSnapshot(const std::string& path);

/// A zero-copy matrix view plus the mapping that keeps it alive.
struct MappedMatrix {
  std::shared_ptr<MappedSnapshot> snapshot;
  Matrix matrix;  // view into the mapping
};

/// Maps a matrix snapshot for zero-copy serving.
[[nodiscard]] StatusOr<MappedMatrix> MapMatrixSnapshot(
    const std::string& path, bool verify_checksums = true);

/// Streams a matrix of unknown row count to a snapshot file in bounded
/// memory — how the out-of-core join's inputs are generated without
/// ever holding the dataset in RAM.
class MatrixSnapshotWriter {
 public:
  [[nodiscard]] static StatusOr<MatrixSnapshotWriter> Create(
      const std::string& path, std::size_t cols);

  MatrixSnapshotWriter(MatrixSnapshotWriter&&) = default;
  MatrixSnapshotWriter& operator=(MatrixSnapshotWriter&&) = default;

  /// Appends whole rows; `row_major.size()` must be a multiple of cols.
  [[nodiscard]] Status AppendRows(std::span<const double> row_major);

  std::size_t rows_written() const { return rows_written_; }

  /// Closes the section and publishes the file atomically.
  [[nodiscard]] Status Finish();

 private:
  MatrixSnapshotWriter(SnapshotWriter writer, std::size_t cols)
      : writer_(std::move(writer)), cols_(cols) {}

  SnapshotWriter writer_;
  std::size_t cols_ = 0;
  std::size_t rows_written_ = 0;
};

/// Random access to row ranges of an on-disk matrix snapshot through a
/// bounded buffer — the blocked join's data source. Opening verifies the
/// section CRC with a streaming pass (skippable for pre-verified files).
class MatrixBlockReader {
 public:
  [[nodiscard]] static StatusOr<MatrixBlockReader> Open(
      const std::string& path, bool verify_checksums = true);

  MatrixBlockReader(MatrixBlockReader&&) = default;
  MatrixBlockReader& operator=(MatrixBlockReader&&) = default;

  std::size_t rows() const { return static_cast<std::size_t>(info_.rows); }
  std::size_t cols() const { return static_cast<std::size_t>(info_.cols); }

  /// Reads rows [row_begin, row_begin + count) into `out`, reusing its
  /// storage when the shape already matches (no steady-state
  /// allocation in the block loop).
  [[nodiscard]] Status ReadRows(std::size_t row_begin, std::size_t count,
                                Matrix* out) const;

 private:
  MatrixBlockReader(SnapshotReader reader, MatrixSectionInfo info)
      : reader_(std::move(reader)), info_(info) {}

  SnapshotReader reader_;
  MatrixSectionInfo info_;
};

}  // namespace storage
}  // namespace ips

#endif  // IPS_STORAGE_SNAPSHOT_H_
