#include "storage/snapshot.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/check.h"

namespace ips {
namespace storage {
namespace {

// Chunk size of streaming CRC verification and block reads: large
// enough to amortize syscalls, small enough to never matter for a
// memory budget.
constexpr std::size_t kIoChunkBytes = 256 * 1024;

std::span<const unsigned char> AsBytes(const void* p, std::size_t n) {
  return {static_cast<const unsigned char*>(p), n};
}

}  // namespace

// ---------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------

StatusOr<SnapshotWriter> SnapshotWriter::Create(const std::string& path) {
  auto file = FileWriter::Create(path);
  IPS_RETURN_IF_ERROR(file.status());
  SnapshotWriter writer(std::move(file).value());
  // Header placeholder; the real header is patched in at Finish, after
  // the section table offset is known.
  const unsigned char zeros[sizeof(FileHeader)] = {};
  IPS_RETURN_IF_ERROR(writer.file_.Write(AsBytes(zeros, sizeof(zeros))));
  return writer;
}

Status SnapshotWriter::PadToAlignment() {
  const std::uint64_t target = AlignUp(file_.offset());
  if (target == file_.offset()) return Status::Ok();
  const unsigned char zeros[kSectionAlignment] = {};
  return file_.Write(
      AsBytes(zeros, static_cast<std::size_t>(target - file_.offset())));
}

Status SnapshotWriter::WriteSection(std::uint32_t id, std::uint32_t version,
                                    std::span<const unsigned char> payload) {
  IPS_RETURN_IF_ERROR(BeginSection(id, version));
  IPS_RETURN_IF_ERROR(Append(payload));
  return EndSection();
}

Status SnapshotWriter::BeginSection(std::uint32_t id, std::uint32_t version) {
  IPS_CHECK(!in_section_) << "BeginSection inside an open section";
  IPS_RETURN_IF_ERROR(PadToAlignment());
  SectionEntry entry;
  entry.id = id;
  entry.version = version;
  entry.offset = file_.offset();
  sections_.push_back(entry);
  in_section_ = true;
  running_crc_ = 0;
  return Status::Ok();
}

Status SnapshotWriter::Append(std::span<const unsigned char> bytes) {
  IPS_CHECK(in_section_) << "Append outside a section";
  IPS_RETURN_IF_ERROR(file_.Write(bytes));
  running_crc_ = Crc32(bytes, running_crc_);
  sections_.back().size += bytes.size();
  return Status::Ok();
}

Status SnapshotWriter::EndSection() {
  IPS_CHECK(in_section_) << "EndSection outside a section";
  sections_.back().crc32 = running_crc_;
  in_section_ = false;
  return Status::Ok();
}

Status SnapshotWriter::Finish() {
  IPS_CHECK(!in_section_) << "Finish inside an open section";
  IPS_RETURN_IF_ERROR(PadToAlignment());
  const std::uint64_t table_offset = file_.offset();
  for (const SectionEntry& entry : sections_) {
    IPS_RETURN_IF_ERROR(file_.Write(AsBytes(&entry, sizeof(entry))));
  }
  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.section_count = static_cast<std::uint32_t>(sections_.size());
  header.section_table_offset = table_offset;
  header.flags = kFlagLittleEndian;
  header.header_crc = HeaderCrc(header);
  IPS_RETURN_IF_ERROR(file_.WriteAt(0, AsBytes(&header, sizeof(header))));
  return file_.Commit();
}

// ---------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------

namespace {

// Shared header + section-table validation of the two read paths.
Status ParseSectionTable(const FileHeader& header,
                         std::span<const unsigned char> table_bytes,
                         std::uint64_t file_size, const std::string& path,
                         std::vector<SectionEntry>* out) {
  out->resize(header.section_count);
  std::memcpy(out->data(), table_bytes.data(),
              table_bytes.size());
  for (const SectionEntry& entry : *out) {
    if (entry.offset < sizeof(FileHeader) ||
        entry.offset % kSectionAlignment != 0 ||
        entry.offset + entry.size > file_size) {
      return Status::DataLoss(
          path + ": section " + SectionName(entry.id) +
          " claims bytes [" + std::to_string(entry.offset) + ", " +
          std::to_string(entry.offset + entry.size) +
          ") outside the file of " + std::to_string(file_size) + " bytes");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  auto file = FileReader::Open(path);
  IPS_RETURN_IF_ERROR(file.status());
  SnapshotReader reader(std::move(file).value());

  if (reader.file_.size() < sizeof(FileHeader)) {
    return Status::DataLoss(path + " is truncated: " +
                            std::to_string(reader.file_.size()) +
                            " bytes is smaller than the snapshot header");
  }
  FileHeader header;
  unsigned char header_bytes[sizeof(FileHeader)];
  IPS_RETURN_IF_ERROR(
      reader.file_.ReadAt(0, {header_bytes, sizeof(header_bytes)}));
  std::memcpy(&header, header_bytes, sizeof(header));
  IPS_RETURN_IF_ERROR(ValidateHeader(header, path));

  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.section_table_offset + table_bytes > reader.file_.size()) {
    return Status::DataLoss(path + " is truncated inside its section table");
  }
  std::vector<unsigned char> table(static_cast<std::size_t>(table_bytes));
  IPS_RETURN_IF_ERROR(
      reader.file_.ReadAt(header.section_table_offset, table));
  IPS_RETURN_IF_ERROR(ParseSectionTable(header, table, reader.file_.size(),
                                        path, &reader.sections_));
  return reader;
}

const SectionEntry* SnapshotReader::Find(std::uint32_t id) const {
  for (const SectionEntry& entry : sections_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

StatusOr<std::vector<unsigned char>> SnapshotReader::ReadSection(
    std::uint32_t id) const {
  const SectionEntry* entry = Find(id);
  if (entry == nullptr) {
    return Status::NotFound(path() + " has no " + SectionName(id) +
                            " section");
  }
  std::vector<unsigned char> payload(static_cast<std::size_t>(entry->size));
  IPS_RETURN_IF_ERROR(file_.ReadAt(entry->offset, payload));
  const std::uint32_t crc = Crc32(payload);
  if (crc != entry->crc32) {
    return Status::DataLoss(path() + ": section " + SectionName(id) +
                            " failed its CRC32 check (stored " +
                            std::to_string(entry->crc32) + ", computed " +
                            std::to_string(crc) + ")");
  }
  return payload;
}

Status SnapshotReader::VerifySection(const SectionEntry& entry) const {
  std::vector<unsigned char> buffer(
      std::min<std::size_t>(kIoChunkBytes,
                            static_cast<std::size_t>(entry.size)));
  std::uint32_t crc = 0;
  std::uint64_t done = 0;
  while (done < entry.size) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(buffer.size(), entry.size - done));
    const std::span<unsigned char> slice(buffer.data(), chunk);
    IPS_RETURN_IF_ERROR(file_.ReadAt(entry.offset + done, slice));
    crc = Crc32(slice, crc);
    done += chunk;
  }
  if (crc != entry.crc32) {
    return Status::DataLoss(path() + ": section " + SectionName(entry.id) +
                            " failed its CRC32 check (stored " +
                            std::to_string(entry.crc32) + ", computed " +
                            std::to_string(crc) + ")");
  }
  return Status::Ok();
}

Status SnapshotReader::VerifyAllSections() const {
  for (const SectionEntry& entry : sections_) {
    IPS_RETURN_IF_ERROR(VerifySection(entry));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Matrix sections
// ---------------------------------------------------------------------

namespace {

// Validates DSET geometry common to the pread and mmap paths.
Status CheckMatrixGeometry(std::uint64_t section_size, std::uint64_t cols,
                           const std::string& path, std::uint64_t* rows) {
  if (section_size < kMatrixSubheaderBytes) {
    return Status::DataLoss(path + ": matrix section is smaller than its " +
                            std::to_string(kMatrixSubheaderBytes) +
                            "-byte subheader");
  }
  const std::uint64_t payload = section_size - kMatrixSubheaderBytes;
  if (cols == 0) {
    if (payload != 0) {
      return Status::DataLoss(path +
                              ": matrix section has zero columns but a "
                              "non-empty payload");
    }
    *rows = 0;
    return Status::Ok();
  }
  const std::uint64_t row_bytes = cols * sizeof(double);
  if (payload % row_bytes != 0) {
    return Status::DataLoss(
        path + ": matrix section payload of " + std::to_string(payload) +
        " bytes is not a whole number of " + std::to_string(cols) +
        "-column rows");
  }
  *rows = payload / row_bytes;
  return Status::Ok();
}

}  // namespace

StatusOr<MatrixSectionInfo> ParseMatrixSection(const SnapshotReader& reader,
                                               const SectionEntry& entry) {
  unsigned char subheader[kMatrixSubheaderBytes];
  if (entry.size < sizeof(subheader)) {
    return Status::DataLoss(reader.path() +
                            ": matrix section is smaller than its subheader");
  }
  IPS_RETURN_IF_ERROR(
      reader.file().ReadAt(entry.offset, {subheader, sizeof(subheader)}));
  MatrixSectionInfo info;
  std::memcpy(&info.cols, subheader, sizeof(info.cols));
  IPS_RETURN_IF_ERROR(
      CheckMatrixGeometry(entry.size, info.cols, reader.path(), &info.rows));
  info.doubles_offset = entry.offset + kMatrixSubheaderBytes;
  return info;
}

// ---------------------------------------------------------------------
// MappedSnapshot
// ---------------------------------------------------------------------

StatusOr<std::shared_ptr<MappedSnapshot>> MappedSnapshot::Map(
    const std::string& path, bool verify_checksums) {
  auto file = MappedFile::Map(path);
  IPS_RETURN_IF_ERROR(file.status());
  std::shared_ptr<MappedSnapshot> snapshot(
      new MappedSnapshot(std::move(file).value()));
  const std::span<const unsigned char> bytes = snapshot->file_.bytes();

  if (bytes.size() < sizeof(FileHeader)) {
    return Status::DataLoss(path + " is truncated: " +
                            std::to_string(bytes.size()) +
                            " bytes is smaller than the snapshot header");
  }
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  IPS_RETURN_IF_ERROR(ValidateHeader(header, path));

  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.section_table_offset + table_bytes > bytes.size()) {
    return Status::DataLoss(path + " is truncated inside its section table");
  }
  IPS_RETURN_IF_ERROR(ParseSectionTable(
      header,
      bytes.subspan(static_cast<std::size_t>(header.section_table_offset),
                    static_cast<std::size_t>(table_bytes)),
      bytes.size(), path, &snapshot->sections_));

  if (verify_checksums) {
    for (const SectionEntry& entry : snapshot->sections_) {
      const std::uint32_t crc = Crc32(snapshot->SectionBytes(entry));
      if (crc != entry.crc32) {
        return Status::DataLoss(path + ": section " + SectionName(entry.id) +
                                " failed its CRC32 check (stored " +
                                std::to_string(entry.crc32) + ", computed " +
                                std::to_string(crc) + ")");
      }
    }
  }
  return snapshot;
}

const SectionEntry* MappedSnapshot::Find(std::uint32_t id) const {
  for (const SectionEntry& entry : sections_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

std::span<const unsigned char> MappedSnapshot::SectionBytes(
    const SectionEntry& entry) const {
  return file_.bytes().subspan(static_cast<std::size_t>(entry.offset),
                               static_cast<std::size_t>(entry.size));
}

StatusOr<Matrix> MappedSnapshot::MapMatrixSection(std::uint32_t id) const {
  const SectionEntry* entry = Find(id);
  if (entry == nullptr) {
    return Status::NotFound(path() + " has no " + SectionName(id) +
                            " section");
  }
  const std::span<const unsigned char> payload = SectionBytes(*entry);
  std::uint64_t cols = 0;
  if (payload.size() < sizeof(cols)) {
    return Status::DataLoss(path() +
                            ": matrix section is smaller than its subheader");
  }
  std::memcpy(&cols, payload.data(), sizeof(cols));
  std::uint64_t rows = 0;
  IPS_RETURN_IF_ERROR(
      CheckMatrixGeometry(entry->size, cols, path(), &rows));
  const unsigned char* doubles = payload.data() + kMatrixSubheaderBytes;
  // Section offsets are 64-byte aligned and the mapping is page-aligned,
  // so the doubles are aligned for every vector ISA the kernels use.
  IPS_CHECK_EQ(reinterpret_cast<std::uintptr_t>(doubles) % kSectionAlignment,
               0u);
  return Matrix::View(reinterpret_cast<const double*>(doubles),
                      static_cast<std::size_t>(rows),
                      static_cast<std::size_t>(cols));
}

// ---------------------------------------------------------------------
// Matrix snapshot conveniences
// ---------------------------------------------------------------------

Status SaveMatrixSnapshot(const Matrix& matrix, const std::string& path) {
  auto writer = MatrixSnapshotWriter::Create(path, matrix.cols());
  IPS_RETURN_IF_ERROR(writer.status());
  IPS_RETURN_IF_ERROR(writer->AppendRows(
      {matrix.raw(), matrix.rows() * matrix.cols()}));
  return writer->Finish();
}

StatusOr<Matrix> LoadMatrixSnapshot(const std::string& path) {
  auto reader = SnapshotReader::Open(path);
  IPS_RETURN_IF_ERROR(reader.status());
  const SectionEntry* entry = reader->Find(kSectionDataset);
  if (entry == nullptr) {
    return Status::NotFound(path + " has no DSET section");
  }
  auto info = ParseMatrixSection(*reader, *entry);
  IPS_RETURN_IF_ERROR(info.status());

  // Read the doubles straight into the matrix storage, folding them
  // into the CRC in place — the dataset is never held twice.
  unsigned char subheader[kMatrixSubheaderBytes];
  IPS_RETURN_IF_ERROR(
      reader->file().ReadAt(entry->offset, {subheader, sizeof(subheader)}));
  std::uint32_t crc = Crc32({subheader, sizeof(subheader)});

  Matrix matrix(static_cast<std::size_t>(info->rows),
                static_cast<std::size_t>(info->cols));
  const std::size_t double_bytes =
      matrix.rows() * matrix.cols() * sizeof(double);
  if (double_bytes > 0) {
    const std::span<unsigned char> storage(
        reinterpret_cast<unsigned char*>(matrix.data().data()), double_bytes);
    IPS_RETURN_IF_ERROR(
        reader->file().ReadAt(info->doubles_offset, storage));
    crc = Crc32(storage, crc);
  }
  if (crc != entry->crc32) {
    return Status::DataLoss(path +
                            ": section DSET failed its CRC32 check (stored " +
                            std::to_string(entry->crc32) + ", computed " +
                            std::to_string(crc) + ")");
  }
  return matrix;
}

StatusOr<MappedMatrix> MapMatrixSnapshot(const std::string& path,
                                         bool verify_checksums) {
  auto snapshot = MappedSnapshot::Map(path, verify_checksums);
  IPS_RETURN_IF_ERROR(snapshot.status());
  auto matrix = (*snapshot)->MapMatrixSection(kSectionDataset);
  IPS_RETURN_IF_ERROR(matrix.status());
  return MappedMatrix{std::move(snapshot).value(),
                      std::move(matrix).value()};
}

StatusOr<MatrixSnapshotWriter> MatrixSnapshotWriter::Create(
    const std::string& path, std::size_t cols) {
  auto writer = SnapshotWriter::Create(path);
  IPS_RETURN_IF_ERROR(writer.status());
  MatrixSnapshotWriter matrix_writer(std::move(writer).value(), cols);
  IPS_RETURN_IF_ERROR(
      matrix_writer.writer_.BeginSection(kSectionDataset, 1));
  unsigned char subheader[kMatrixSubheaderBytes] = {};
  const std::uint64_t cols64 = cols;
  std::memcpy(subheader, &cols64, sizeof(cols64));
  IPS_RETURN_IF_ERROR(
      matrix_writer.writer_.Append({subheader, sizeof(subheader)}));
  return matrix_writer;
}

Status MatrixSnapshotWriter::AppendRows(std::span<const double> row_major) {
  IPS_CHECK_GT(cols_, 0u);
  IPS_CHECK_EQ(row_major.size() % cols_, 0u);
  IPS_RETURN_IF_ERROR(writer_.Append(
      AsBytes(row_major.data(), row_major.size() * sizeof(double))));
  rows_written_ += row_major.size() / cols_;
  return Status::Ok();
}

Status MatrixSnapshotWriter::Finish() {
  IPS_RETURN_IF_ERROR(writer_.EndSection());
  return writer_.Finish();
}

// ---------------------------------------------------------------------
// MatrixBlockReader
// ---------------------------------------------------------------------

StatusOr<MatrixBlockReader> MatrixBlockReader::Open(const std::string& path,
                                                    bool verify_checksums) {
  auto reader = SnapshotReader::Open(path);
  IPS_RETURN_IF_ERROR(reader.status());
  const SectionEntry* entry = reader->Find(kSectionDataset);
  if (entry == nullptr) {
    return Status::NotFound(path + " has no DSET section");
  }
  if (verify_checksums) {
    IPS_RETURN_IF_ERROR(reader->VerifySection(*entry));
  }
  auto info = ParseMatrixSection(*reader, *entry);
  IPS_RETURN_IF_ERROR(info.status());
  return MatrixBlockReader(std::move(reader).value(), *info);
}

Status MatrixBlockReader::ReadRows(std::size_t row_begin, std::size_t count,
                                   Matrix* out) const {
  IPS_CHECK(out != nullptr);
  if (row_begin + count > info_.rows) {
    return Status::OutOfRange(
        "rows [" + std::to_string(row_begin) + ", " +
        std::to_string(row_begin + count) + ") exceed the snapshot's " +
        std::to_string(info_.rows) + " rows");
  }
  if (out->rows() != count || out->cols() != info_.cols ||
      out->is_view()) {
    *out = Matrix(count, static_cast<std::size_t>(info_.cols));
  }
  const std::size_t bytes = count * cols() * sizeof(double);
  if (bytes == 0) return Status::Ok();
  const std::uint64_t offset =
      info_.doubles_offset +
      static_cast<std::uint64_t>(row_begin) * cols() * sizeof(double);
  return reader_.file().ReadAt(
      offset,
      {reinterpret_cast<unsigned char*>(out->data().data()), bytes});
}

}  // namespace storage
}  // namespace ips
