#!/usr/bin/env bash
# Builds and runs the serving benchmark, producing BENCH_serve.json in
# the repository root (throughput/latency under concurrent load, the
# planner-vs-fixed-algorithm A/B on both contract workloads, the
# observability overhead ratio, and a "registry" object embedding the
# key process-registry counters accumulated over the run).
#
#   $ scripts/bench_json.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

cmake -B build -S . -DIPS_BUILD_BENCHMARKS=ON >/dev/null
cmake --build build -j"$JOBS" --target bench_serve
./build/bench/bench_serve
echo "BENCH_serve.json written to $(pwd)/BENCH_serve.json"
