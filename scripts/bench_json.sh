#!/usr/bin/env bash
# Builds and runs the JSON-emitting benchmarks, producing in the
# repository root:
#
#   BENCH_serve.json    throughput/latency under concurrent load, the
#                       planner-vs-fixed-algorithm A/B on both contract
#                       workloads, the batched-execution A/B
#                       (Engine::BatchQuery vs sequential per-query
#                       dispatch, plus the scheduler toggle), the
#                       observability overhead ratio, and a "registry"
#                       object embedding the key process-registry
#                       counters accumulated over the run.
#   BENCH_kernels.json  dispatched kernel throughput (scalar vs AVX2
#                       dot/matvec/score_block, popcount) and the tiled
#                       BlockTopK headline against the per-query scalar
#                       baseline.
#
#   $ scripts/bench_json.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

cmake -B build -S . -DIPS_BUILD_BENCHMARKS=ON >/dev/null
cmake --build build -j"$JOBS" --target bench_serve bench_kernels
./build/bench/bench_kernels
echo "BENCH_kernels.json written to $(pwd)/BENCH_kernels.json"
./build/bench/bench_serve
echo "BENCH_serve.json written to $(pwd)/BENCH_serve.json"
