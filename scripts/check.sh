#!/usr/bin/env bash
# Full robustness gate: build and run the test suite (1) plain,
# (2) under ASan+UBSan, (3) under UBSan alone (with examples on, so the
# serve path runs sanitized end to end), and (4) under TSan for the
# concurrency-heavy targets (util_test exercises the exception-safe
# ThreadPool/ParallelFor, obs_test the sharded metrics registry,
# chaos_test the failpoint and cancellation machinery). The plain pass
# also smoke-tests the metrics export pipeline: serve_quickstart writes
# the registry as JSON and tools/metrics_json_check validates its
# structure.
#
# The `static` mode is the compile-time leg (DESIGN.md §9): the project
# linter/analyzer (tools/ipslint — table rules plus the layering,
# lock-order, and failpoint-coverage passes), the [[nodiscard]]
# contract via the plain -Werror build, and — when clang++/clang-tidy
# are installed — clang's -Wthread-safety race analysis and the curated
# .clang-tidy set. It ends with a per-leg summary table; the clang legs
# print a SKIPPED notice when the tools are absent so the mode degrades
# gracefully on gcc-only machines (CI installs clang and runs all
# four legs).
#
#   $ scripts/check.sh            # everything
#   $ scripts/check.sh plain      # just the plain build + tests
#   $ scripts/check.sh asan|tsan  # a single sanitizer pass
#   $ scripts/check.sh ubsan      # UBSan alone (catches UB that ASan's
#                                 # combined leg can mask, and runs the
#                                 # benches/examples that leg skips)
#   $ scripts/check.sh chaos      # failure-injection suites under TSan
#   $ scripts/check.sh scalar     # full suite with IPS_FORCE_SCALAR=1
#   $ scripts/check.sh storage    # snapshot suite under ASan + warm-start gate
#   $ scripts/check.sh quant      # int8 parity suite (both dispatches) + bench gate
#   $ scripts/check.sh serve      # serving bench gates (planner, QoS, hedging)
#   $ scripts/check.sh static     # ipslint passes + nodiscard + clang analyses
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
MODE="${1:-all}"

run_plain() {
  echo "=== plain build + full test suite ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  (cd build && ctest --output-on-failure -j"$JOBS")
  echo "=== serve quickstart (1k concurrent deadlined requests) + metrics smoke ==="
  IPS_METRICS_JSON=build/metrics_smoke.json ./build/examples/serve_quickstart
  ./build/tools/metrics_json_check build/metrics_smoke.json
}

run_asan() {
  echo "=== ASan+UBSan build + full test suite ==="
  cmake -B build-asan -S . -DIPS_SANITIZE="address;undefined" \
    -DIPS_BUILD_BENCHMARKS=OFF -DIPS_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-asan -j"$JOBS"
  (cd build-asan && ctest --output-on-failure -j"$JOBS")
}

run_ubsan() {
  # UBSan on its own: -fno-sanitize-recover=all turns any UB (signed
  # overflow, misaligned load, bad shift, out-of-range double->int) into
  # a hard failure. Unlike the ASan leg this one keeps benchmarks and
  # examples ON, so the kernel dispatch and serve paths run under UBSan
  # at full width too.
  echo "=== UBSan build + full test suite ==="
  cmake -B build-ubsan -S . -DIPS_SANITIZE=undefined \
    -DIPS_BUILD_BENCHMARKS=OFF -DIPS_BUILD_EXAMPLES=ON >/dev/null
  cmake --build build-ubsan -j"$JOBS"
  (cd build-ubsan && ctest --output-on-failure -j"$JOBS")
  echo "=== UBSan serve quickstart ==="
  ./build-ubsan/examples/serve_quickstart
}

run_tsan() {
  echo "=== TSan build + concurrency tests ==="
  cmake -B build-tsan -S . -DIPS_SANITIZE=thread \
    -DIPS_BUILD_BENCHMARKS=OFF -DIPS_BUILD_EXAMPLES=ON >/dev/null
  cmake --build build-tsan -j"$JOBS" \
    --target util_test obs_test chaos_test serve_test sharded_test serve_quickstart
  (cd build-tsan && ctest --output-on-failure -R 'util_test|obs_test|chaos_test|serve_test|sharded_test')
  echo "=== TSan serve quickstart ==="
  ./build-tsan/examples/serve_quickstart
}

run_chaos() {
  # The failure-injection leg (DESIGN.md §11): every failpoint-driven
  # suite — the chaos matrix, the serving layer it wraps, and the
  # sharded scatter-gather engine — under TSan, where an injected
  # failure racing the scatter/gather or breaker state machinery would
  # surface as a data race instead of a flaky pass.
  echo "=== chaos: TSan build + failure-injection suites ==="
  cmake -B build-tsan -S . -DIPS_SANITIZE=thread \
    -DIPS_BUILD_BENCHMARKS=OFF -DIPS_BUILD_EXAMPLES=ON >/dev/null
  cmake --build build-tsan -j"$JOBS" \
    --target chaos_test serve_test sharded_test serve_quickstart
  (cd build-tsan && ctest --output-on-failure -R 'chaos_test|serve_test|sharded_test')
  echo "=== chaos: degraded-mode quickstart (shard 2 down) under TSan ==="
  ./build-tsan/examples/serve_quickstart
}

run_scalar() {
  echo "=== scalar-dispatch leg: full test suite with IPS_FORCE_SCALAR=1 ==="
  # Pins the portable kernel table (src/linalg/kernels.h) so the whole
  # suite — kernel parity, BatchQuery equivalence, every index — runs
  # the non-SIMD code path CI would otherwise never exercise on AVX2
  # runners.
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  (cd build && IPS_FORCE_SCALAR=1 ctest --output-on-failure -j"$JOBS")
}

run_storage() {
  # The persistence leg (DESIGN.md §12): the snapshot round-trip /
  # corruption / failpoint suite under ASan+UBSan (where a stray read
  # past a mapped section or a leak in the mmap keepalive chain would
  # actually fail), then the plain-build storage bench — which authors
  # a real snapshot, gates the mmap warm start at 10x over a cold
  # rebuild, and streams the out-of-core blocked join sweep — with
  # `ipssnap --verify` CRC-checking the artifacts the bench wrote.
  echo "=== storage: ASan round-trip + corruption + failpoint suite ==="
  cmake -B build-asan -S . -DIPS_SANITIZE="address;undefined" \
    -DIPS_BUILD_BENCHMARKS=OFF -DIPS_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-asan -j"$JOBS" --target storage_test chaos_test
  (cd build-asan && ctest --output-on-failure -R 'storage_test|chaos_test')
  echo "=== storage: warm-start gate + out-of-core sweep (bench_storage) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS" --target bench_storage ipssnap persistence_quickstart
  ./build/bench/bench_storage
  echo "=== storage: ipssnap --verify over the bench artifacts ==="
  ./build/tools/ipssnap --verify build/bench_storage_snapshot/snapshot.ips
  ./build/tools/ipssnap --verify build/bench_storage_data.ips
  echo "=== storage: persistence quickstart (save -> warm start -> blocked join) ==="
  ./build/examples/persistence_quickstart
}

run_quant() {
  # The quantized-scoring leg (DESIGN.md §13): the int8 kernel parity /
  # error-bound / precision-matrix suite on both kernel dispatches
  # (quant_test runs the active ISA, quant_test_scalar pins the portable
  # table — the AVX2 maddubs path and the scalar path must agree
  # bitwise), then the bench gate: bench_quant exits nonzero unless the
  # quantized-rerank path reaches 2x exact throughput at 0.95 recall on
  # the large-norm-spread workload.
  echo "=== quant: int8 parity + precision-matrix suite (dispatched + scalar) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS" --target quant_test bench_quant
  (cd build && ctest --output-on-failure -R 'quant_test')
  echo "=== quant: two-stage scoring bench gate (2x at 0.95 recall) ==="
  (cd build && ./bench/bench_quant)
}

run_serve() {
  # The serving-layer leg (DESIGN.md §14): bench_serve is a gate, not a
  # report — it exits nonzero unless (1) the planner beats the best
  # fixed algorithm on a calibration workload, (2) batched execution
  # clears 2x over sequential at equal recall, (3) sharded
  # scatter-gather passes its overhead gate, (4) hedging cuts the
  # straggler p99, (5) the adaptive feedback planner beats every fixed
  # (algo, precision) policy across a mid-run workload shift, and
  # (6) a victim tenant's p99 holds its bound under 10x overload from
  # an aggressor tenant (QoS admission + token buckets + lanes). The
  # JSON snapshot it writes is the checked-in BENCH_serve.json.
  echo "=== serve: planner/QoS/hedging bench gates (bench_serve) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS" --target bench_serve
  # Run from the repo root so the JSON snapshot refreshes the
  # checked-in BENCH_serve.json in place.
  ./build/bench/bench_serve
}

run_static() {
  # Each leg records a row for the summary table printed at the end.
  STATIC_SUMMARY=""
  static_row() { STATIC_SUMMARY+=$(printf '%-22s %s' "$1" "$2")$'\n'; }

  echo "=== static analysis: ipslint (rules + layering + lock-order + failpoint-coverage) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS" --target ipslint
  # ipslint prints its own per-pass table; it exits nonzero on findings.
  ./build/tools/ipslint
  static_row "ipslint (4 passes)" "clean"

  echo "=== static analysis: [[nodiscard]] contract (-Werror build) ==="
  # Status/StatusOr and every factory/query entry point are [[nodiscard]];
  # the tree-wide -Wall -Wextra -Werror build is the enforcement.
  cmake --build build -j"$JOBS"
  static_row "nodiscard (-Werror)" "clean"

  if command -v clang++ >/dev/null 2>&1; then
    echo "=== static analysis: clang -Wthread-safety ==="
    # Compile-time race detection from the IPS_GUARDED_BY/IPS_REQUIRES
    # annotations (src/util/thread_annotations.h). Deleting a lock
    # acquisition or an annotation fails this build.
    cmake -B build-static -S . \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DIPS_BUILD_BENCHMARKS=OFF >/dev/null
    cmake --build build-static -j"$JOBS"
    static_row "clang -Wthread-safety" "clean"
  else
    echo "=== static analysis: clang -Wthread-safety SKIPPED (no clang++ on PATH) ==="
    static_row "clang -Wthread-safety" "SKIPPED (no clang++)"
  fi

  if command -v clang-tidy >/dev/null 2>&1 && command -v clang++ >/dev/null 2>&1; then
    echo "=== static analysis: clang-tidy (.clang-tidy) ==="
    cmake -B build-tidy -S . \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DIPS_CLANG_TIDY=ON \
      -DIPS_BUILD_BENCHMARKS=OFF >/dev/null
    cmake --build build-tidy -j"$JOBS"
    static_row "clang-tidy" "clean"
  else
    echo "=== static analysis: clang-tidy SKIPPED (clang-tidy or clang++ not on PATH) ==="
    static_row "clang-tidy" "SKIPPED (no clang-tidy)"
  fi

  echo "=== static analysis summary ==="
  printf '%-22s %s\n' "leg" "status"
  printf '%-22s %s\n' "---" "------"
  printf '%s' "$STATIC_SUMMARY"
}

case "$MODE" in
  plain)  run_plain ;;
  asan)   run_asan ;;
  tsan)   run_tsan ;;
  ubsan)  run_ubsan ;;
  chaos)  run_chaos ;;
  scalar) run_scalar ;;
  storage) run_storage ;;
  quant)  run_quant ;;
  serve)  run_serve ;;
  static) run_static ;;
  all)    run_plain; run_scalar; run_asan; run_tsan; run_ubsan; run_storage; run_quant; run_serve; run_static ;;
  *) echo "usage: $0 [plain|asan|tsan|ubsan|chaos|scalar|storage|quant|serve|static|all]" >&2; exit 2 ;;
esac

echo "all checks passed"
