#!/usr/bin/env bash
# Full robustness gate: build and run the test suite (1) plain,
# (2) under ASan+UBSan, and (3) under TSan for the concurrency-heavy
# targets (util_test exercises the exception-safe ThreadPool/ParallelFor,
# obs_test the sharded metrics registry, chaos_test the failpoint and
# cancellation machinery). The plain pass also smoke-tests the metrics
# export pipeline: serve_quickstart writes the registry as JSON and
# tools/metrics_json_check validates its structure.
#
#   $ scripts/check.sh            # everything
#   $ scripts/check.sh plain      # just the plain build + tests
#   $ scripts/check.sh asan|tsan  # a single sanitizer pass
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
MODE="${1:-all}"

run_plain() {
  echo "=== plain build + full test suite ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$JOBS"
  (cd build && ctest --output-on-failure -j"$JOBS")
  echo "=== serve quickstart (1k concurrent deadlined requests) + metrics smoke ==="
  IPS_METRICS_JSON=build/metrics_smoke.json ./build/examples/serve_quickstart
  ./build/tools/metrics_json_check build/metrics_smoke.json
}

run_asan() {
  echo "=== ASan+UBSan build + full test suite ==="
  cmake -B build-asan -S . -DIPS_SANITIZE="address;undefined" \
    -DIPS_BUILD_BENCHMARKS=OFF -DIPS_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-asan -j"$JOBS"
  (cd build-asan && ctest --output-on-failure -j"$JOBS")
}

run_tsan() {
  echo "=== TSan build + concurrency tests ==="
  cmake -B build-tsan -S . -DIPS_SANITIZE=thread \
    -DIPS_BUILD_BENCHMARKS=OFF -DIPS_BUILD_EXAMPLES=ON >/dev/null
  cmake --build build-tsan -j"$JOBS" \
    --target util_test obs_test chaos_test serve_test serve_quickstart
  (cd build-tsan && ctest --output-on-failure -R 'util_test|obs_test|chaos_test|serve_test')
  echo "=== TSan serve quickstart ==="
  ./build-tsan/examples/serve_quickstart
}

case "$MODE" in
  plain) run_plain ;;
  asan)  run_asan ;;
  tsan)  run_tsan ;;
  all)   run_plain; run_asan; run_tsan ;;
  *) echo "usage: $0 [plain|asan|tsan|all]" >&2; exit 2 ;;
esac

echo "all checks passed"
